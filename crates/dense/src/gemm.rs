//! Blocked, rayon-parallel GEMM kernels.
//!
//! Three orientations cover every dense product in a GCN layer:
//!
//! * [`gemm`]    — `C = A·B`   (the linear layer `H·W`)
//! * [`gemm_tn`] — `C = Aᵀ·B`  (weight gradients `Hᵀ·(A G)`)
//! * [`gemm_nt`] — `C = A·Bᵀ`  (gradient propagation `G·Wᵀ`)
//!
//! All kernels parallelize over disjoint row panels of `C` with rayon, so
//! they are race-free by construction. Each variant has two
//! implementations, selected per thread via [`crate::kernels`]:
//!
//! * The **scalar** path keeps the `i-k-j` loop order with the inner loop
//!   a contiguous axpy over rows of `B` (or a sequential dot product for
//!   `gemm_nt`). It is the bitwise reference every golden in the repo is
//!   pinned against and is never changed.
//! * The **fast** path uses lane-unrolled register tiles: `MR×2W`
//!   accumulator blocks held across the whole `k` loop, so `C` traffic
//!   drops from `O(m·k·n)` to `O(m·n)` and the compiler maps the
//!   fixed-width accumulator arrays onto vector registers. Each fast
//!   body is compiled twice — once at the crate's baseline target and
//!   once inside an `#[target_feature(enable = "avx2")]` wrapper chosen
//!   at runtime — but both compilations inline the *same* body (plain
//!   mul-then-add, never contracted to FMA), so the host CPU affects
//!   speed only, never bits. For a fixed width the accumulation order
//!   per output element is fixed (`k` ascending; `gemm_nt` uses `W`
//!   strided partials plus a pairwise reduction tree), so the fast path
//!   is run-to-run deterministic but only epsilon-bounded against
//!   scalar. Width 1 delegates to the scalar kernel and is bitwise-equal
//!   by construction.

use crate::kernels::{self, Mode, Width};
use crate::mat::Mat;
use rayon::prelude::*;

/// Rows of `C` per parallel task. Large enough to amortize task overhead,
/// small enough to load-balance skewed shapes.
const ROW_PANEL: usize = 64;

/// Row-tile height of the fast kernels: `MR` independent accumulator
/// vectors per column block, enough to hide FMA latency.
const MR: usize = 4;

/// `C = A · B`, allocating the output.
///
/// # Panics
/// If `A.cols() != B.rows()`.
pub fn gemm(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.rows(), b.cols());
    gemm_acc(a, b, &mut c);
    c
}

/// `C += A · B` into an existing output.
pub fn gemm_acc(a: &Mat, b: &Mat, c: &mut Mat) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "gemm: A is {m}x{k} but B is {kb}x{n}");
    assert_eq!(c.shape(), (m, n), "gemm: C shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    // The kernel mode is read on the calling thread and captured by the
    // dispatch decision here; pool workers never consult their own
    // thread-local.
    match kernels::mode() {
        Mode::Scalar | Mode::Fast(Width::W1) => scalar_gemm_acc(k, n, a_data, b_data, c),
        Mode::Fast(Width::W4) => fast_gemm_acc::<4>(k, n, a_data, b_data, c),
        Mode::Fast(Width::W8) => fast_gemm_acc::<8>(k, n, a_data, b_data, c),
    }
}

fn scalar_gemm_acc(k: usize, n: usize, a_data: &[f32], b_data: &[f32], c: &mut Mat) {
    c.as_mut_slice()
        .par_chunks_mut(ROW_PANEL * n)
        .enumerate()
        .for_each(|(panel, c_panel)| {
            let i0 = panel * ROW_PANEL;
            let rows_here = c_panel.len() / n;
            for ii in 0..rows_here {
                let i = i0 + ii;
                let a_row = &a_data[i * k..(i + 1) * k];
                let c_row = &mut c_panel[ii * n..(ii + 1) * n];
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        });
}

// The `[x0, x1, x2, x3]` row unrolls in the tile bodies below are tied to
// this exact height.
const _: () = assert!(MR == 4, "fast tile bodies unroll exactly four A rows");

fn fast_gemm_acc<const W: usize>(k: usize, n: usize, a_data: &[f32], b_data: &[f32], c: &mut Mat) {
    let avx = kernels::avx2_available();
    c.as_mut_slice()
        .par_chunks_mut(ROW_PANEL * n)
        .enumerate()
        .for_each(|(panel, c_panel)| {
            let i0 = panel * ROW_PANEL;
            let rows_here = c_panel.len() / n;
            let mut ii = 0;
            while ii + MR <= rows_here {
                let i = i0 + ii;
                let a_rows = &a_data[i * k..(i + MR) * k];
                let c_rows = &mut c_panel[ii * n..(ii + MR) * n];
                tile_nn::<W>(avx, n, a_rows, b_data, c_rows);
                ii += MR;
            }
            while ii < rows_here {
                let i = i0 + ii;
                let a_row = &a_data[i * k..(i + 1) * k];
                let c_row = &mut c_panel[ii * n..(ii + 1) * n];
                row_nn::<W>(avx, n, a_row, b_data, c_row);
                ii += 1;
            }
        });
}

/// Route one tile to the AVX2 compilation when the host supports it.
#[inline]
fn tile_nn<const W: usize>(avx: bool, n: usize, a_rows: &[f32], b: &[f32], c_rows: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx {
        // SAFETY: `avx` witnesses runtime AVX2 support.
        return unsafe { tile_nn_avx2::<W>(n, a_rows, b, c_rows) };
    }
    let _ = avx;
    tile_nn_body::<W>(n, a_rows, b, c_rows)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn tile_nn_avx2<const W: usize>(n: usize, a_rows: &[f32], b: &[f32], c_rows: &mut [f32]) {
    tile_nn_body::<W>(n, a_rows, b, c_rows)
}

/// `MR` rows of `C += A·B`: `MR×2W` register accumulators held across the
/// whole `k` loop (the second `W` block doubles the FMAs amortizing each
/// load of `A`). Per output element the accumulation order is `k`
/// ascending — the scalar kernel's order, minus its `aik == 0` skip.
#[inline(always)]
fn tile_nn_body<const W: usize>(n: usize, a_rows: &[f32], b: &[f32], c_rows: &mut [f32]) {
    let k = a_rows.len() / MR;
    let (a01, a23) = a_rows.split_at(2 * k);
    let (a0, a1) = a01.split_at(k);
    let (a2, a3) = a23.split_at(k);
    let mut j = 0;
    while j + 2 * W <= n {
        let mut lo = [[0.0f32; W]; MR];
        let mut hi = [[0.0f32; W]; MR];
        for ((((b_row, &x0), &x1), &x2), &x3) in b.chunks_exact(n).zip(a0).zip(a1).zip(a2).zip(a3) {
            let b_blk = &b_row[j..j + 2 * W];
            for (r, &x) in [x0, x1, x2, x3].iter().enumerate() {
                for l in 0..W {
                    lo[r][l] += x * b_blk[l];
                    hi[r][l] += x * b_blk[W + l];
                }
            }
        }
        for r in 0..MR {
            let c_blk = &mut c_rows[r * n + j..r * n + j + 2 * W];
            for l in 0..W {
                c_blk[l] += lo[r][l];
                c_blk[W + l] += hi[r][l];
            }
        }
        j += 2 * W;
    }
    if j + W <= n {
        let mut acc = [[0.0f32; W]; MR];
        for ((((b_row, &x0), &x1), &x2), &x3) in b.chunks_exact(n).zip(a0).zip(a1).zip(a2).zip(a3) {
            let b_blk = &b_row[j..j + W];
            for (r, &x) in [x0, x1, x2, x3].iter().enumerate() {
                for l in 0..W {
                    acc[r][l] += x * b_blk[l];
                }
            }
        }
        for r in 0..MR {
            let c_blk = &mut c_rows[r * n + j..r * n + j + W];
            for l in 0..W {
                c_blk[l] += acc[r][l];
            }
        }
        j += W;
    }
    // Lane tail (`n % W` columns): width-1 blocks, same k-ascending order.
    while j < n {
        for (r, a_row) in [a0, a1, a2, a3].iter().enumerate() {
            let mut acc = 0.0f32;
            for (b_row, &x) in b.chunks_exact(n).zip(*a_row) {
                acc += x * b_row[j];
            }
            c_rows[r * n + j] += acc;
        }
        j += 1;
    }
}

/// Single-row remainder of [`tile_nn_body`] for `rows_here % MR` rows.
#[inline]
fn row_nn<const W: usize>(avx: bool, n: usize, a_row: &[f32], b: &[f32], c_row: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx {
        // SAFETY: `avx` witnesses runtime AVX2 support.
        return unsafe { row_nn_avx2::<W>(n, a_row, b, c_row) };
    }
    let _ = avx;
    row_nn_body::<W>(n, a_row, b, c_row)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn row_nn_avx2<const W: usize>(n: usize, a_row: &[f32], b: &[f32], c_row: &mut [f32]) {
    row_nn_body::<W>(n, a_row, b, c_row)
}

#[inline(always)]
fn row_nn_body<const W: usize>(n: usize, a_row: &[f32], b: &[f32], c_row: &mut [f32]) {
    let mut j = 0;
    while j + W <= n {
        let mut acc = [0.0f32; W];
        for (b_row, &x) in b.chunks_exact(n).zip(a_row) {
            let b_blk = &b_row[j..j + W];
            for l in 0..W {
                acc[l] += x * b_blk[l];
            }
        }
        let c_blk = &mut c_row[j..j + W];
        for l in 0..W {
            c_blk[l] += acc[l];
        }
        j += W;
    }
    while j < n {
        let mut acc = 0.0f32;
        for (b_row, &x) in b.chunks_exact(n).zip(a_row) {
            acc += x * b_row[j];
        }
        c_row[j] += acc;
        j += 1;
    }
}

/// `C = Aᵀ · B`, allocating the output (`A: k×m`, `B: k×n`, `C: m×n`).
pub fn gemm_tn(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.cols(), b.cols());
    gemm_tn_acc(a, b, &mut c);
    c
}

/// `C += Aᵀ · B`.
///
/// Parallelized over row panels of `C` (i.e. column panels of `A`): each
/// task scans all `k` rows of `A`/`B` but only touches its own columns of
/// `A`, keeping writes disjoint.
pub fn gemm_tn_acc(a: &Mat, b: &Mat, c: &mut Mat) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "gemm_tn: A is {k}x{m} but B is {kb}x{n}");
    assert_eq!(c.shape(), (m, n), "gemm_tn: C shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    match kernels::mode() {
        Mode::Scalar | Mode::Fast(Width::W1) => scalar_gemm_tn_acc(k, m, n, a_data, b_data, c),
        Mode::Fast(Width::W4) => fast_gemm_tn_acc::<4>(m, n, a_data, b_data, c),
        Mode::Fast(Width::W8) => fast_gemm_tn_acc::<8>(m, n, a_data, b_data, c),
    }
}

fn scalar_gemm_tn_acc(k: usize, m: usize, n: usize, a_data: &[f32], b_data: &[f32], c: &mut Mat) {
    // Weight-gradient shapes have small m, n (feature dims) and large k
    // (vertices): panels of C rows correspond to strided columns of A.
    c.as_mut_slice()
        .par_chunks_mut(ROW_PANEL * n)
        .enumerate()
        .for_each(|(panel, c_panel)| {
            let i0 = panel * ROW_PANEL;
            let rows_here = c_panel.len() / n;
            for kk in 0..k {
                let b_row = &b_data[kk * n..(kk + 1) * n];
                let a_row = &a_data[kk * m..(kk + 1) * m];
                for ii in 0..rows_here {
                    let aik = a_row[i0 + ii];
                    if aik == 0.0 {
                        continue;
                    }
                    let c_row = &mut c_panel[ii * n..(ii + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        });
}

fn fast_gemm_tn_acc<const W: usize>(
    m: usize,
    n: usize,
    a_data: &[f32],
    b_data: &[f32],
    c: &mut Mat,
) {
    let avx = kernels::avx2_available();
    c.as_mut_slice()
        .par_chunks_mut(ROW_PANEL * n)
        .enumerate()
        .for_each(|(panel, c_panel)| {
            let i0 = panel * ROW_PANEL;
            let rows_here = c_panel.len() / n;
            let mut ii = 0;
            while ii < rows_here {
                let mr = MR.min(rows_here - ii);
                tile_tn::<W>(
                    avx,
                    m,
                    n,
                    i0 + ii,
                    a_data,
                    b_data,
                    &mut c_panel[ii * n..],
                    mr,
                );
                ii += mr;
            }
        });
}

/// Route one tile to the AVX2 compilation when the host supports it.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_tn<const W: usize>(
    avx: bool,
    m: usize,
    n: usize,
    i_base: usize,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    mr: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if avx {
        // SAFETY: `avx` witnesses runtime AVX2 support.
        return unsafe { tile_tn_avx2::<W>(m, n, i_base, a, b, c_rows, mr) };
    }
    let _ = avx;
    tile_tn_body::<W>(m, n, i_base, a, b, c_rows, mr)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn tile_tn_avx2<const W: usize>(
    m: usize,
    n: usize,
    i_base: usize,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    mr: usize,
) {
    tile_tn_body::<W>(m, n, i_base, a, b, c_rows, mr)
}

/// `mr ≤ MR` rows of `C += Aᵀ·B` starting at absolute row `i_base` of
/// `C` (column `i_base` of `A`), with `MR×2W` register accumulators.
/// Accumulation order per element is `k` ascending, matching the scalar
/// kernel minus its zero-skip.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile_tn_body<const W: usize>(
    m: usize,
    n: usize,
    i_base: usize,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    mr: usize,
) {
    let mut j = 0;
    while j + 2 * W <= n {
        let mut lo = [[0.0f32; W]; MR];
        let mut hi = [[0.0f32; W]; MR];
        for (a_row, b_row) in a.chunks_exact(m).zip(b.chunks_exact(n)) {
            let b_blk = &b_row[j..j + 2 * W];
            let a_blk = &a_row[i_base..i_base + mr];
            for ((acc_lo, acc_hi), &x) in lo.iter_mut().zip(&mut hi).zip(a_blk) {
                for l in 0..W {
                    acc_lo[l] += x * b_blk[l];
                    acc_hi[l] += x * b_blk[W + l];
                }
            }
        }
        for (r, (acc_lo, acc_hi)) in lo.iter().zip(&hi).take(mr).enumerate() {
            let c_blk = &mut c_rows[r * n + j..r * n + j + 2 * W];
            for l in 0..W {
                c_blk[l] += acc_lo[l];
                c_blk[W + l] += acc_hi[l];
            }
        }
        j += 2 * W;
    }
    if j + W <= n {
        let mut acc = [[0.0f32; W]; MR];
        for (a_row, b_row) in a.chunks_exact(m).zip(b.chunks_exact(n)) {
            let b_blk = &b_row[j..j + W];
            let a_blk = &a_row[i_base..i_base + mr];
            for (acc_r, &x) in acc.iter_mut().zip(a_blk) {
                for l in 0..W {
                    acc_r[l] += x * b_blk[l];
                }
            }
        }
        for (r, acc_r) in acc.iter().take(mr).enumerate() {
            let c_blk = &mut c_rows[r * n + j..r * n + j + W];
            for l in 0..W {
                c_blk[l] += acc_r[l];
            }
        }
        j += W;
    }
    while j < n {
        for r in 0..mr {
            let mut acc = 0.0f32;
            for (a_row, b_row) in a.chunks_exact(m).zip(b.chunks_exact(n)) {
                acc += a_row[i_base + r] * b_row[j];
            }
            c_rows[r * n + j] += acc;
        }
        j += 1;
    }
}

/// `C = A · Bᵀ`, allocating the output (`A: m×k`, `B: n×k`, `C: m×n`).
///
/// The inner loop is a dot product of two contiguous length-`k` rows. The
/// fast path splits the dot into `W` strided partial accumulators folded
/// by a fixed pairwise reduction tree, then adds the `k % W` tail
/// sequentially — a fixed order per width, so deterministic, but
/// different rounding from the scalar sequential sum.
pub fn gemm_nt(a: &Mat, b: &Mat) -> Mat {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "gemm_nt: A is {m}x{k} but B is {n}x{kb}");
    let mut c = Mat::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    match kernels::mode() {
        Mode::Scalar | Mode::Fast(Width::W1) => scalar_gemm_nt(k, n, a_data, b_data, &mut c),
        Mode::Fast(Width::W4) => fast_gemm_nt::<4>(k, n, a_data, b_data, &mut c),
        Mode::Fast(Width::W8) => fast_gemm_nt::<8>(k, n, a_data, b_data, &mut c),
    }
    c
}

fn scalar_gemm_nt(k: usize, n: usize, a_data: &[f32], b_data: &[f32], c: &mut Mat) {
    c.as_mut_slice()
        .par_chunks_mut(ROW_PANEL * n)
        .enumerate()
        .for_each(|(panel, c_panel)| {
            let i0 = panel * ROW_PANEL;
            let rows_here = c_panel.len() / n;
            for ii in 0..rows_here {
                let a_row = &a_data[(i0 + ii) * k..(i0 + ii + 1) * k];
                let c_row = &mut c_panel[ii * n..(ii + 1) * n];
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let b_row = &b_data[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    *cv += acc;
                }
            }
        });
}

fn fast_gemm_nt<const W: usize>(k: usize, n: usize, a_data: &[f32], b_data: &[f32], c: &mut Mat) {
    let avx = kernels::avx2_available();
    c.as_mut_slice()
        .par_chunks_mut(ROW_PANEL * n)
        .enumerate()
        .for_each(|(panel, c_panel)| {
            let i0 = panel * ROW_PANEL;
            let rows_here = c_panel.len() / n;
            for ii in 0..rows_here {
                let a_row = &a_data[(i0 + ii) * k..(i0 + ii + 1) * k];
                let c_row = &mut c_panel[ii * n..(ii + 1) * n];
                nt_row::<W>(avx, k, a_row, b_data, c_row);
            }
        });
}

/// Route one output row to the AVX2 compilation when the host supports it.
#[inline]
fn nt_row<const W: usize>(avx: bool, k: usize, a_row: &[f32], b: &[f32], c_row: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx {
        // SAFETY: `avx` witnesses runtime AVX2 support.
        return unsafe { nt_row_avx2::<W>(k, a_row, b, c_row) };
    }
    let _ = avx;
    nt_row_body::<W>(k, a_row, b, c_row)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn nt_row_avx2<const W: usize>(k: usize, a_row: &[f32], b: &[f32], c_row: &mut [f32]) {
    nt_row_body::<W>(k, a_row, b, c_row)
}

#[inline(always)]
fn nt_row_body<const W: usize>(k: usize, a_row: &[f32], b: &[f32], c_row: &mut [f32]) {
    for (cv, b_row) in c_row.iter_mut().zip(b.chunks_exact(k)) {
        *cv += fast_dot::<W>(a_row, b_row);
    }
}

/// Lane-unrolled dot product: `W` strided partial sums over the body,
/// folded with a fixed pairwise tree, then the `k % W` tail added
/// sequentially. The order is a pure function of `k` and `W`.
#[inline(always)]
fn fast_dot<const W: usize>(a: &[f32], b: &[f32]) -> f32 {
    let a_chunks = a.chunks_exact(W);
    let b_chunks = b.chunks_exact(W);
    let a_tail = a_chunks.remainder();
    let b_tail = b_chunks.remainder();
    let mut acc = [0.0f32; W];
    for (a_blk, b_blk) in a_chunks.zip(b_chunks) {
        for l in 0..W {
            acc[l] += a_blk[l] * b_blk[l];
        }
    }
    let mut stride = W / 2;
    while stride > 0 {
        for l in 0..stride {
            acc[l] += acc[l + stride];
        }
        stride /= 2;
    }
    let mut sum = acc[0];
    for (&av, &bv) in a_tail.iter().zip(b_tail) {
        sum += av * bv;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{with_mode, Mode, Width};
    use crate::ops::allclose;

    fn gemm_ref(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn gemm_small_known() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = gemm(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_matches_reference_odd_shapes() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (65, 33, 17), (130, 4, 129)] {
            let a = Mat::random(m, k, 1.0, (m * k) as u64);
            let b = Mat::random(k, n, 1.0, (k * n + 1) as u64);
            assert!(allclose(&gemm(&a, &b), &gemm_ref(&a, &b), 1e-4));
        }
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = Mat::random(20, 20, 1.0, 9);
        assert!(allclose(&gemm(&a, &Mat::eye(20)), &a, 1e-6));
        assert!(allclose(&gemm(&Mat::eye(20), &a), &a, 1e-6));
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = Mat::random(8, 8, 1.0, 1);
        let b = Mat::random(8, 8, 1.0, 2);
        let mut c = gemm(&a, &b);
        gemm_acc(&a, &b, &mut c);
        let mut twice = gemm(&a, &b);
        for v in twice.as_mut_slice() {
            *v *= 2.0;
        }
        assert!(allclose(&c, &twice, 1e-4));
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let a = Mat::random(50, 13, 1.0, 3);
        let b = Mat::random(50, 9, 1.0, 4);
        let expect = gemm_ref(&a.transpose(), &b);
        assert!(allclose(&gemm_tn(&a, &b), &expect, 1e-4));
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let a = Mat::random(41, 13, 1.0, 5);
        let b = Mat::random(23, 13, 1.0, 6);
        let expect = gemm_ref(&a, &b.transpose());
        assert!(allclose(&gemm_nt(&a, &b), &expect, 1e-4));
    }

    #[test]
    fn gemm_empty_dims() {
        let a = Mat::zeros(0, 4);
        let b = Mat::zeros(4, 3);
        assert_eq!(gemm(&a, &b).shape(), (0, 3));
        let a = Mat::zeros(3, 0);
        let b = Mat::zeros(0, 2);
        let c = gemm(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic]
    fn gemm_shape_mismatch_panics() {
        let _ = gemm(&Mat::zeros(2, 3), &Mat::zeros(4, 2));
    }

    #[test]
    fn all_variants_handle_zero_dimensions() {
        // m == 0, n == 0, k == 0 for every orientation, including the
        // accumulating forms (which must leave C untouched).
        for (m, k, n) in [(0, 4, 3), (3, 0, 2), (3, 4, 0), (0, 0, 0)] {
            assert_eq!(gemm(&Mat::zeros(m, k), &Mat::zeros(k, n)).shape(), (m, n));
            assert_eq!(
                gemm_tn(&Mat::zeros(k, m), &Mat::zeros(k, n)).shape(),
                (m, n)
            );
            assert_eq!(
                gemm_nt(&Mat::zeros(m, k), &Mat::zeros(n, k)).shape(),
                (m, n)
            );
            let mut c = Mat::from_fn(m, n, |i, j| (i + 2 * j) as f32 + 1.0);
            let keep = c.clone();
            gemm_acc(&Mat::zeros(m, k), &Mat::zeros(k, n), &mut c);
            assert_eq!(c, keep);
            let mut c = keep.clone();
            gemm_tn_acc(&Mat::zeros(k, m), &Mat::zeros(k, n), &mut c);
            assert_eq!(c, keep);
        }
    }

    #[test]
    fn fast_variants_handle_zero_dimensions_at_every_width() {
        // Regression for the lane-tail and k == 0 edge cases: the fast
        // dispatch must hit the same early-outs as scalar for all widths.
        for width in Width::all() {
            with_mode(Mode::Fast(width), || {
                for (m, k, n) in [(0, 4, 3), (3, 0, 2), (3, 4, 0), (0, 0, 0)] {
                    assert_eq!(gemm(&Mat::zeros(m, k), &Mat::zeros(k, n)).shape(), (m, n));
                    assert_eq!(
                        gemm_tn(&Mat::zeros(k, m), &Mat::zeros(k, n)).shape(),
                        (m, n)
                    );
                    assert_eq!(
                        gemm_nt(&Mat::zeros(m, k), &Mat::zeros(n, k)).shape(),
                        (m, n)
                    );
                    let mut c = Mat::from_fn(m, n, |i, j| (i + 2 * j) as f32 + 1.0);
                    let keep = c.clone();
                    gemm_acc(&Mat::zeros(m, k), &Mat::zeros(k, n), &mut c);
                    assert_eq!(c, keep);
                    let mut c = keep.clone();
                    gemm_tn_acc(&Mat::zeros(k, m), &Mat::zeros(k, n), &mut c);
                    assert_eq!(c, keep);
                }
            });
        }
    }

    #[test]
    fn fast_cols_narrower_than_width_use_the_lane_tail() {
        // n < W exercises the pure-remainder column loop; k < W exercises
        // the gemm_nt sequential tail with an empty vector body.
        for width in Width::all() {
            with_mode(Mode::Fast(width), || {
                for (m, k, n) in [(5, 7, 1), (9, 2, 3), (MR + 1, 1, 2), (2, 3, 5)] {
                    let a = Mat::random(m, k, 1.0, (10 * m + k) as u64);
                    let b = Mat::random(k, n, 1.0, (10 * k + n) as u64);
                    assert!(allclose(&gemm(&a, &b), &gemm_ref(&a, &b), 1e-4));
                    let bt = Mat::random(n, k, 1.0, (3 * k + n) as u64);
                    assert!(allclose(
                        &gemm_nt(&a, &bt),
                        &gemm_ref(&a, &bt.transpose()),
                        1e-4
                    ));
                    let at = Mat::random(k, m, 1.0, (7 * m + k) as u64);
                    assert!(allclose(
                        &gemm_tn(&at, &b),
                        &gemm_ref(&at.transpose(), &b),
                        1e-4
                    ));
                }
            });
        }
    }
}
