//! The RDM GCN engine: forward and backward passes that execute any
//! SpMM/GEMM ordering (Table IV configuration) with communication-free
//! products and explicit redistributions, on any adjacency replication
//! factor `R_A` (Fig. 6 topology; `R_A = P` is full replication).
//!
//! The engine charges *exactly* the redistributions of §IV-A because layout
//! conversions happen lazily through [`FormCache`]: an access that the plan
//! made free (the needed layout already exists) moves no bytes, and an
//! access the model prices (mismatched adjacent orders, intra-layer
//! conversion, loss boundary, non-memoized weight gradient) triggers one
//! group all-to-all tagged [`CollectiveKind::Redistribute`]. Under
//! `R_A < P` the SpMM itself additionally broadcasts inside column groups
//! (tagged `Broadcast`), per Table II's `R_A < P` rows.
//!
//! Two small traffic classes exist that Table IV ignores; both are tagged
//! differently so measured `Redistribute` bytes stay model-exact:
//!
//! * weight-gradient ring all-reduces (`f_{l-1} × f_l`, tagged
//!   `AllReduce`);
//! * ReLU-mask alignment in configurations where the gradient and the
//!   saved activation exist only in opposite layouts (tagged `Other`).

use crate::dist::{Dist, DistMat, FormCache};
use crate::ops::{dist_gemm, dist_gemm_nt, weight_grad, OpCounters, Topology};
use crate::plan::Plan;
use rdm_comm::{CollectiveKind, RankCtx};
use rdm_dense::{relu, relu_backward, Mat};
use rdm_model::Order;

/// Replicated GCN weights, `w[l-1]` has shape `feats[l-1] × feats[l]`.
#[derive(Clone, Debug)]
pub struct GcnWeights {
    pub w: Vec<Mat>,
}

impl GcnWeights {
    /// Glorot-initialized weights, identical on every rank for a given
    /// seed.
    pub fn init(feats: &[usize], seed: u64) -> Self {
        let w = feats
            .windows(2)
            .enumerate()
            .map(|(l, pair)| Mat::glorot(pair[0], pair[1], seed.wrapping_add(l as u64)))
            .collect();
        GcnWeights { w }
    }

    /// Layer count.
    pub fn layers(&self) -> usize {
        self.w.len()
    }

    /// The `(rows, cols)` of every weight (for optimizer state).
    pub fn shapes(&self) -> Vec<(usize, usize)> {
        self.w.iter().map(|m| m.shape()).collect()
    }
}

/// Everything the forward pass leaves behind for the backward pass.
pub struct ForwardArtifacts {
    /// `h[0]` is the input feature cache; `h[l]` the (activated) output of
    /// layer `l`; `h[L]` holds the raw logits.
    pub h: Vec<FormCache>,
    /// Per layer, the forward SpMM intermediate `Â·H^{l-1}` when the layer
    /// ran SpMM-first *and* the plan memoizes — the reuse of §III-C. Its
    /// row form always exists (the intra-layer redistribution produced
    /// it).
    pub t_fwd: Vec<Option<FormCache>>,
}

impl ForwardArtifacts {
    /// The logits as a row-sliced matrix, redistributing if the last layer
    /// produced them tile-sliced (the loss boundary of §IV-A.1).
    pub fn logits_row(&mut self, topo: &Topology, ctx: &RankCtx) -> DistMat {
        let last = self.h.len() - 1;
        self.h[last]
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone()
    }
}

fn activate(mut z: DistMat, apply: bool) -> DistMat {
    if apply {
        z.local = relu(&z.local);
    }
    z
}

/// Run the forward pass of eq. (1)–(2) under `plan`.
///
/// `input` must hold *both* layouts of `H^0` (the initial distribution is
/// free — data is loaded wherever the plan wants it, §IV-B).
pub fn rdm_forward(
    ctx: &RankCtx,
    topo: &Topology,
    input: FormCache,
    weights: &GcnWeights,
    plan: &Plan,
    ops: &mut OpCounters,
) -> ForwardArtifacts {
    let layers = plan.config.layers();
    assert_eq!(weights.layers(), layers, "weight/plan layer mismatch");
    assert_eq!(
        plan.r_a, topo.grid.r_a,
        "plan replication factor does not match the topology"
    );
    let mut h: Vec<FormCache> = Vec::with_capacity(layers + 1);
    h.push(input);
    let mut t_fwd: Vec<Option<FormCache>> = (0..layers).map(|_| None).collect();
    for l in 1..=layers {
        let w = &weights.w[l - 1];
        let is_last = l == layers;
        let out = match plan.config.forward[l - 1] {
            Order::SpmmFirst => {
                // T = Â·H^{l-1} (needs the tile layout), then Z = T·W
                // (needs row slices): one intra-layer redistribution of
                // width f_{l-1}.
                let input_tile = h[l - 1]
                    .require_col(topo, ctx, CollectiveKind::Redistribute)
                    .clone();
                let t = topo.spmm(&input_tile, ctx, ops);
                let mut tc = FormCache::of_col(t);
                let t_row = tc
                    .require_row(topo, ctx, CollectiveKind::Redistribute)
                    .clone();
                let z = dist_gemm(&t_row, w, ops);
                if plan.memoize {
                    t_fwd[l - 1] = Some(tc);
                }
                FormCache::of_row(activate(z, !is_last))
            }
            Order::GemmFirst => {
                // T = H^{l-1}·W (row slices), then Z = Â·T (tile layout):
                // one redistribution of width f_l.
                let input_row = h[l - 1]
                    .require_row(topo, ctx, CollectiveKind::Redistribute)
                    .clone();
                let t = dist_gemm(&input_row, w, ops);
                let t_tile = topo.row_to_tile(&t, ctx, CollectiveKind::Redistribute);
                let z = topo.spmm(&t_tile, ctx, ops);
                FormCache::of_col(activate(z, !is_last))
            }
        };
        h.push(out);
    }
    ForwardArtifacts { h, t_fwd }
}

/// Gradients produced by the backward pass.
pub struct BackwardResult {
    /// Replicated, already all-reduced weight gradients (one per layer).
    pub weight_grads: Vec<Mat>,
    /// Gradient with respect to the input features (`G^0` in Fig. 4).
    pub g0: DistMat,
}

/// Run the backward pass of eq. (3)–(4) under `plan`, consuming the
/// forward artifacts (their caches may gain layouts as reuse demands).
#[allow(clippy::too_many_arguments)]
pub fn rdm_backward(
    ctx: &RankCtx,
    topo: &Topology,
    artifacts: &mut ForwardArtifacts,
    weights: &GcnWeights,
    plan: &Plan,
    loss_grad: DistMat,
    feats: &[usize],
    ops: &mut OpCounters,
) -> BackwardResult {
    let layers = plan.config.layers();
    assert_eq!(
        loss_grad.dist,
        Dist::Row,
        "loss gradient arrives row-sliced"
    );
    let mut g_cache = FormCache::of_row(loss_grad);
    let mut weight_grads: Vec<Mat> = weights
        .w
        .iter()
        .map(|w| Mat::zeros(w.rows(), w.cols()))
        .collect();
    let mut g0: Option<DistMat> = None;
    for l in (1..=layers).rev() {
        let w = &weights.w[l - 1];
        // Stage 1: propagate the gradient through aggregation + weights.
        let (g_prev_pre, t_b_row) = match plan.config.backward[l - 1] {
            Order::SpmmFirst => {
                // T = Â·Gˡ (tile layout), redistribute, then Gˡ⁻¹ = T·Wᵀ
                // (row slices).
                let g_tile = g_cache
                    .require_col(topo, ctx, CollectiveKind::Redistribute)
                    .clone();
                let t = topo.spmm_bwd(&g_tile, ctx, ops);
                let mut tc = FormCache::of_col(t);
                let t_row = tc
                    .require_row(topo, ctx, CollectiveKind::Redistribute)
                    .clone();
                let gp = dist_gemm_nt(&t_row, w, ops);
                (gp, Some(t_row))
            }
            Order::GemmFirst => {
                // T = Gˡ·Wᵀ (row slices), redistribute, then Gˡ⁻¹ = Â·T
                // (tile layout).
                let g_row = g_cache
                    .require_row(topo, ctx, CollectiveKind::Redistribute)
                    .clone();
                let t = dist_gemm_nt(&g_row, w, ops);
                let t_tile = topo.row_to_tile(&t, ctx, CollectiveKind::Redistribute);
                let gp = topo.spmm_bwd(&t_tile, ctx, ops);
                (gp, None)
            }
        };
        // Stage 2: the weight gradient Yˡ (eq. 4).
        weight_grads[l - 1] = compute_weight_grad(
            ctx,
            topo,
            l,
            artifacts,
            &mut g_cache,
            t_b_row.as_ref(),
            feats,
            ops,
        );
        // Stage 3: mask by σ'(Z^{l-1}) and hand off (no mask into the raw
        // input features).
        if l > 1 {
            let masked = apply_relu_mask(ctx, topo, g_prev_pre, &mut artifacts.h[l - 1]);
            g_cache = match masked.dist {
                Dist::Row => FormCache::of_row(masked),
                Dist::Col => FormCache::of_col(masked),
                Dist::Replicated => unreachable!(),
            };
        } else {
            g0 = Some(g_prev_pre);
        }
    }
    BackwardResult {
        weight_grads,
        g0: g0.expect("layer 1 always produces G^0"),
    }
}

/// Compute `Yˡ = (H^{l-1})ᵀ (Â Gˡ)` choosing the cheapest valid product
/// (§III-C). For the symmetric GCN adjacency, `Yˡ = (Â H^{l-1})ᵀ Gˡ` is an
/// equally valid form, which lets the memoized forward intermediate stand
/// in for the backward SpMM.
#[allow(clippy::too_many_arguments)]
fn compute_weight_grad(
    ctx: &RankCtx,
    topo: &Topology,
    l: usize,
    artifacts: &mut ForwardArtifacts,
    g_cache: &mut FormCache,
    t_b_row: Option<&DistMat>,
    feats: &[usize],
    ops: &mut OpCounters,
) -> Mat {
    if let Some(t_b) = t_b_row {
        // Backward was SpMM-first: Â·Gˡ is already in row form.
        if artifacts.h[l - 1].has_row() {
            let h_row = artifacts.h[l - 1].row.as_ref().unwrap();
            return weight_grad(h_row, t_b, ctx, ops);
        }
        // H^{l-1} exists only tile-sliced; if the forward intermediate
        // and the gradient have row forms, use Yˡ = (Â H^{l-1})ᵀ Gˡ.
        if artifacts.t_fwd[l - 1].is_some() && g_cache.has_row() {
            let t_f = artifacts.t_fwd[l - 1]
                .as_mut()
                .unwrap()
                .require_row(topo, ctx, CollectiveKind::Redistribute)
                .clone();
            let g_row = g_cache.row.as_ref().unwrap();
            return weight_grad(&t_f, g_row, ctx, ops);
        }
        // Pathological 3-layer-only case: pay one extra redistribution.
        let h_row = artifacts.h[l - 1]
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        return weight_grad(&h_row, t_b, ctx, ops);
    }
    // Backward was GEMM-first. The gradient's row form exists (the GEMM
    // consumed it).
    let g_row = g_cache
        .row
        .as_ref()
        .expect("GEMM-first consumed row form")
        .clone();
    if artifacts.t_fwd[l - 1].is_some() {
        // Memoized: Yˡ = (Â H^{l-1})ᵀ Gˡ — zero extra sparse work.
        let t_f = artifacts.t_fwd[l - 1]
            .as_mut()
            .unwrap()
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        return weight_grad(&t_f, &g_row, ctx, ops);
    }
    // Non-memoized (forward was GEMM-first, or memoization disabled): an
    // extra SpMM of the cheaper width, plus redistributions around it
    // (Table III, N.M.).
    let f_in = feats[l - 1];
    let f_out = feats[l];
    if f_out <= f_in {
        // Recompute T = Â·Gˡ.
        let g_tile = g_cache
            .require_col(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        let t = topo.spmm_bwd(&g_tile, ctx, ops);
        let mut tc = FormCache::of_col(t);
        let t_row = tc
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        let h_row = artifacts.h[l - 1]
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        weight_grad(&h_row, &t_row, ctx, ops)
    } else {
        // Recompute T = Â·H^{l-1}.
        let h_tile = artifacts.h[l - 1]
            .require_col(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        let t = topo.spmm(&h_tile, ctx, ops);
        let mut tc = FormCache::of_col(t);
        let t_row = tc
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        weight_grad(&t_row, &g_row, ctx, ops)
    }
}

/// `G ⊙ σ'(Z)` using the saved activation (`σ'(z) = 1[relu(z) > 0]`),
/// aligned to whichever layout the gradient is in. If the activation was
/// never materialized in that layout, the mask is aligned with an
/// all-to-all tagged `Other` (traffic the paper's model does not price —
/// see the module docs).
fn apply_relu_mask(
    ctx: &RankCtx,
    topo: &Topology,
    mut g: DistMat,
    h_cache: &mut FormCache,
) -> DistMat {
    let h = match g.dist {
        Dist::Row => h_cache.require_row(topo, ctx, CollectiveKind::Other),
        Dist::Col => h_cache.require_col(topo, ctx, CollectiveKind::Other),
        Dist::Replicated => unreachable!("gradients are never replicated"),
    };
    g.local = relu_backward(&g.local, &h.local);
    g
}

/// Serial (single-process) GCN forward/backward reference used by tests:
/// plain dense/sparse algebra with no distribution at all.
pub mod serial {
    use super::GcnWeights;
    use rdm_dense::{gemm, gemm_nt, gemm_tn, relu, relu_backward, Mat};
    use rdm_sparse::{spmm, Csr};

    /// Forward: returns per-layer activations (`h[0]` = input, `h[L]` =
    /// logits).
    pub fn forward(adj: &Csr, input: &Mat, weights: &GcnWeights) -> Vec<Mat> {
        let mut h = vec![input.clone()];
        let layers = weights.layers();
        for l in 1..=layers {
            let t = spmm(adj, &h[l - 1]);
            let z = gemm(&t, &weights.w[l - 1]);
            h.push(if l < layers { relu(&z) } else { z });
        }
        h
    }

    /// Backward from a logits gradient for a **symmetric** aggregation
    /// matrix; returns (weight grads, input grad).
    pub fn backward(
        adj: &Csr,
        h: &[Mat],
        weights: &GcnWeights,
        loss_grad: &Mat,
    ) -> (Vec<Mat>, Mat) {
        backward_asym(adj, h, weights, loss_grad)
    }

    /// Backward for a general aggregation matrix `M`: pass `Mᵀ` as
    /// `adj_bwd` (equal to `M` in the symmetric GCN case). All adjacency
    /// products in the backward pass are against the transpose:
    /// `Gˡ⁻¹ = Mᵀ Gˡ Wᵀ ⊙ σ'` and `Yˡ = Hᵀ Mᵀ Gˡ`.
    pub fn backward_asym(
        adj_bwd: &Csr,
        h: &[Mat],
        weights: &GcnWeights,
        loss_grad: &Mat,
    ) -> (Vec<Mat>, Mat) {
        let layers = weights.layers();
        let mut grads = Vec::new();
        let mut g = loss_grad.clone();
        for l in (1..=layers).rev() {
            let t = spmm(adj_bwd, &g); // Mᵀ·Gˡ
            let y = gemm_tn(&h[l - 1], &t); // Hᵀ Mᵀ Gˡ
            grads.push(y);
            let mut gp = gemm_nt(&t, &weights.w[l - 1]);
            if l > 1 {
                gp = relu_backward(&gp, &h[l - 1]);
            }
            g = gp;
        }
        grads.reverse();
        (grads, g)
    }
}

/// Build the input [`FormCache`] for a topology: both layouts of the
/// feature matrix, sliced locally (the initial distribution is free).
pub fn input_cache(features: &Mat, topo: &Topology, ctx: &RankCtx) -> FormCache {
    let mut c = FormCache::of_row(DistMat::scatter_rows(features, ctx.size(), ctx.rank()));
    c.put(topo.scatter_tile(features, ctx));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{serial as loss_serial, softmax_xent, LossSpec};
    use rdm_comm::Cluster;
    use rdm_dense::allclose;
    use rdm_graph::dataset::toy;
    use rdm_model::OrderConfig;

    /// Distributed forward under every 2-layer plan must equal the serial
    /// forward.
    #[test]
    fn forward_matches_serial_for_all_16_configs() {
        let ds = toy(60, 1);
        let weights = GcnWeights::init(&[16, 8, 4], 7);
        let serial_h = serial::forward(&ds.adj_norm, &ds.features, &weights);
        let logits_ref = serial_h.last().unwrap().clone();
        for id in 0..16 {
            let plan = Plan::from_id(id, 2, 4);
            let (adj, feats, w2, lr) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                logits_ref.clone(),
            );
            let out = Cluster::new(4).run(move |ctx| {
                let topo = Topology::full(&adj, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                logits.gather(ctx, CollectiveKind::Other)
            });
            for got in &out.results {
                assert!(allclose(got, &lr, 1e-3), "config ID {id} forward mismatch");
            }
        }
    }

    /// Distributed backward under every 2-layer plan must produce the same
    /// weight gradients as the serial reference.
    #[test]
    fn backward_matches_serial_for_all_16_configs() {
        let ds = toy(48, 2);
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 3);
        let serial_h = serial::forward(&ds.adj_norm, &ds.features, &weights);
        let mask = vec![true; ds.n()];
        let (_, lg) = loss_serial::softmax_xent(serial_h.last().unwrap(), &ds.labels, &mask);
        let (serial_grads, serial_g0) = serial::backward(&ds.adj_norm, &serial_h, &weights, &lg);
        for id in 0..16 {
            let plan = Plan::from_id(id, 2, 4);
            let (adj, feats, w2, labels) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                ds.labels.clone(),
            );
            let fd = feats_dims.clone();
            let m2 = mask.clone();
            let out = Cluster::new(4).run(move |ctx| {
                let topo = Topology::full(&adj, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                let spec = LossSpec {
                    labels: &labels,
                    mask: &m2,
                    num_classes: 4,
                };
                let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                let back = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
                let g0 = match back.g0.dist {
                    Dist::Row => back.g0.gather(ctx, CollectiveKind::Other),
                    Dist::Col => topo.gather_tile(&back.g0, ctx, CollectiveKind::Other),
                    Dist::Replicated => unreachable!(),
                };
                (back.weight_grads, g0)
            });
            for (grads, g0) in &out.results {
                for (l, (got, expect)) in grads.iter().zip(&serial_grads).enumerate() {
                    assert!(
                        allclose(got, expect, 1e-3),
                        "config ID {id} weight grad layer {} mismatch",
                        l + 1
                    );
                }
                assert!(allclose(g0, &serial_g0, 1e-3), "config ID {id} g0 mismatch");
            }
        }
    }

    /// Three-layer plans must also match the serial reference.
    #[test]
    fn three_layer_forward_backward_matches_serial() {
        let ds = toy(40, 5);
        let feats_dims = vec![16usize, 12, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 11);
        let serial_h = serial::forward(&ds.adj_norm, &ds.features, &weights);
        let mask = vec![true; ds.n()];
        let (_, lg) = loss_serial::softmax_xent(serial_h.last().unwrap(), &ds.labels, &mask);
        let (serial_grads, _) = serial::backward(&ds.adj_norm, &serial_h, &weights, &lg);
        // Sample of IDs including ones that hit the pathological reuse
        // paths; running all 64 here would be slow in debug builds.
        for id in [0usize, 5, 10, 21, 42, 63, 38, 27] {
            let plan = Plan {
                config: OrderConfig::from_id(id, 3),
                r_a: 4,
                memoize: true,
            };
            let (adj, feats, w2, labels) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                ds.labels.clone(),
            );
            let fd = feats_dims.clone();
            let m2 = mask.clone();
            let out = Cluster::new(4).run(move |ctx| {
                let topo = Topology::full(&adj, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                let spec = LossSpec {
                    labels: &labels,
                    mask: &m2,
                    num_classes: 4,
                };
                let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                let back = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
                back.weight_grads
            });
            for grads in &out.results {
                for (l, (got, expect)) in grads.iter().zip(&serial_grads).enumerate() {
                    assert!(
                        allclose(got, expect, 1e-3),
                        "3-layer ID {id} grad layer {} mismatch",
                        l + 1
                    );
                }
            }
        }
    }

    /// `R_A < P` (Fig. 6 topology): forward and backward still match the
    /// serial reference, for all 16 configs on a 2×2 grid and a 4×2 grid.
    #[test]
    fn ra_topology_matches_serial_for_all_configs() {
        let ds = toy(48, 9);
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 3);
        let serial_h = serial::forward(&ds.adj_norm, &ds.features, &weights);
        let mask = vec![true; ds.n()];
        let (_, lg) = loss_serial::softmax_xent(serial_h.last().unwrap(), &ds.labels, &mask);
        let (serial_grads, _) = serial::backward(&ds.adj_norm, &serial_h, &weights, &lg);
        for (p, r_a) in [(4usize, 2usize), (8, 2), (8, 4)] {
            for id in 0..16 {
                let plan = Plan {
                    config: OrderConfig::from_id(id, 2),
                    r_a,
                    memoize: true,
                };
                let (adj, feats, w2, labels) = (
                    ds.adj_norm.clone(),
                    ds.features.clone(),
                    weights.clone(),
                    ds.labels.clone(),
                );
                let fd = feats_dims.clone();
                let m2 = mask.clone();
                let out = Cluster::new(p).run(move |ctx| {
                    let topo = Topology::new(&adj, r_a, ctx);
                    let mut ops = OpCounters::default();
                    let input = input_cache(&feats, &topo, ctx);
                    let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                    let logits = art.logits_row(&topo, ctx);
                    let spec = LossSpec {
                        labels: &labels,
                        mask: &m2,
                        num_classes: 4,
                    };
                    let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                    let back = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
                    back.weight_grads
                });
                for grads in &out.results {
                    for (l, (got, expect)) in grads.iter().zip(&serial_grads).enumerate() {
                        assert!(
                            allclose(got, expect, 1e-3),
                            "P={p} R_A={r_a} ID {id} grad layer {} mismatch",
                            l + 1
                        );
                    }
                }
            }
        }
    }

    /// Disabling memoization must not change the numerics, only the cost.
    #[test]
    fn no_memoize_same_gradients_more_spmm() {
        let ds = toy(48, 4);
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 3);
        // ID 8 = (F:SS, B:DS): layer 2 is S-forward, D-backward — the
        // memoized case.
        let run = |memoize: bool| {
            let plan = Plan {
                config: OrderConfig::from_id(8, 2),
                r_a: 4,
                memoize,
            };
            let (adj, feats, w2, labels) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                ds.labels.clone(),
            );
            let fd = feats_dims.clone();
            Cluster::new(4).run(move |ctx| {
                let topo = Topology::full(&adj, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                let mask = vec![true; labels.len()];
                let spec = LossSpec {
                    labels: &labels,
                    mask: &mask,
                    num_classes: 4,
                };
                let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                let back = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
                (back.weight_grads, ops)
            })
        };
        let with = run(true);
        let without = run(false);
        for (a, b) in with.results.iter().zip(&without.results) {
            for (ga, gb) in a.0.iter().zip(&b.0) {
                assert!(allclose(ga, gb, 1e-4), "gradients changed with memoize off");
            }
            assert!(
                b.1.spmm_fma > a.1.spmm_fma,
                "no-memoize must pay extra SpMM: {} vs {}",
                b.1.spmm_fma,
                a.1.spmm_fma
            );
        }
    }

    /// The measured redistribution traffic of an epoch must equal the cost
    /// model's prediction exactly, for representative configurations.
    #[test]
    fn measured_redistribution_matches_cost_model() {
        let ds = toy(64, 3);
        let p = 4;
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 5);
        let shape = rdm_model::GnnShape {
            n: ds.n(),
            nnz: ds.adj_norm.nnz(),
            feats: feats_dims.clone(),
        };
        for id in [0usize, 2, 3, 5, 8, 10, 12] {
            let plan = Plan::from_id(id, 2, p);
            let expect = rdm_model::cost::config_cost(&shape, &plan.config, p, p);
            let (adj, feats, w2, labels) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                ds.labels.clone(),
            );
            let fd = feats_dims.clone();
            let out = Cluster::new(p).run(move |ctx| {
                let topo = Topology::full(&adj, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                let mask = vec![true; labels.len()];
                let spec = LossSpec {
                    labels: &labels,
                    mask: &mask,
                    num_classes: 4,
                };
                let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                let _ = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
                ops
            });
            let measured_bytes: u64 = out
                .stats
                .iter()
                .map(|s| s.bytes(CollectiveKind::Redistribute))
                .sum();
            // The model counts elements; ×4 for f32 bytes. Balanced
            // partition of 64 rows / 16·8·4 cols over 4 ranks is exact.
            let expect_bytes = (expect.comm_elems * 4.0) as u64;
            assert_eq!(
                measured_bytes, expect_bytes,
                "config ID {id}: measured {measured_bytes} vs model {expect_bytes}"
            );
            // SpMM op counts must match too.
            let measured_spmm: f64 = out.results.iter().map(|o| o.spmm_fma).sum();
            assert_eq!(measured_spmm, expect.spmm_ops, "config ID {id} spmm ops");
        }
    }

    /// Under `R_A < P` the measured traffic (group redistributions +
    /// panel broadcasts) must equal the Table II/III `R_A < P` model.
    #[test]
    fn ra_measured_traffic_matches_cost_model() {
        let ds = toy(64, 6);
        let p = 4;
        let r_a = 2;
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 5);
        let shape = rdm_model::GnnShape {
            n: ds.n(),
            nnz: ds.adj_norm.nnz(),
            feats: feats_dims.clone(),
        };
        for id in [0usize, 5, 10] {
            let plan = Plan {
                config: OrderConfig::from_id(id, 2),
                r_a,
                memoize: true,
            };
            let expect = rdm_model::cost::config_cost(&shape, &plan.config, p, r_a);
            let (adj, feats, w2, labels) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                ds.labels.clone(),
            );
            let fd = feats_dims.clone();
            let out = Cluster::new(p).run(move |ctx| {
                let topo = Topology::new(&adj, r_a, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                let mask = vec![true; labels.len()];
                let spec = LossSpec {
                    labels: &labels,
                    mask: &mask,
                    num_classes: 4,
                };
                let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                let _ = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
            });
            let measured: u64 = out
                .stats
                .iter()
                .map(|s| s.bytes(CollectiveKind::Redistribute) + s.bytes(CollectiveKind::Broadcast))
                .sum();
            let expect_bytes = (expect.comm_elems * 4.0) as u64;
            assert_eq!(
                measured, expect_bytes,
                "R_A={r_a} config ID {id}: measured {measured} vs model {expect_bytes}"
            );
        }
    }

    /// ID 10 (the paper's running example) must move exactly 4·f_h units
    /// and nothing else.
    #[test]
    fn id10_traffic_is_4fh_only() {
        let ds = toy(64, 9);
        let p = 4;
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 5);
        let plan = Plan::from_id(10, 2, p);
        let (adj, feats, w2, labels) = (
            ds.adj_norm.clone(),
            ds.features.clone(),
            weights.clone(),
            ds.labels.clone(),
        );
        let fd = feats_dims.clone();
        let out = Cluster::new(p).run(move |ctx| {
            let topo = Topology::full(&adj, ctx);
            let mut ops = OpCounters::default();
            let input = input_cache(&feats, &topo, ctx);
            let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
            let logits = art.logits_row(&topo, ctx);
            let mask = vec![true; labels.len()];
            let spec = LossSpec {
                labels: &labels,
                mask: &mask,
                num_classes: 4,
            };
            let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
            let _ = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
        });
        let redistribute: u64 = out
            .stats
            .iter()
            .map(|s| s.bytes(CollectiveKind::Redistribute))
            .sum();
        // 4 · f_h · (P-1)/P · N elements × 4 bytes; N=64, f_h=8, P=4.
        assert_eq!(redistribute as usize, 4 * (3 * 64 / 4) * 8 * 4);
        // No broadcast traffic at all (fully replicated adjacency).
        for st in &out.stats {
            assert_eq!(st.bytes(CollectiveKind::Broadcast), 0);
        }
    }
}
