//! The central soundness check of the reproduction: the analytical cost
//! model (Tables II–IV) and the executed system must agree *exactly* on
//! communication volume and SpMM operation counts.

use gnn_rdm::core::{train_gcn, Plan, TrainerConfig};
use gnn_rdm::dense::{KernelMode, KernelWidth};
use gnn_rdm::graph::DatasetSpec;
use gnn_rdm::model::cost::config_cost;
use gnn_rdm::model::GnnShape;

fn dataset(n: usize, edges: usize, f_in: usize, classes: usize) -> gnn_rdm::graph::Dataset {
    DatasetSpec::synthetic("mvm", n, edges, f_in, classes).instantiate(11)
}

/// Redistribution bytes of one epoch must equal the model for every
/// 2-layer configuration, across cluster sizes, including when N does not
/// divide P.
#[test]
fn every_2layer_config_matches_model_bytes() {
    for (n, p) in [(96usize, 4usize), (100, 4), (91, 7)] {
        let ds = dataset(n, 8 * n, 12, 5);
        let shape = GnnShape {
            n: ds.n(),
            nnz: ds.adj_norm.nnz(),
            feats: vec![12, 16, 5],
        };
        for id in 0..16 {
            let plan = Plan::from_id(id, 2, p);
            let cfg = TrainerConfig::rdm(p, plan.clone()).hidden(16).epochs(1);
            let report = train_gcn(&ds, &cfg).unwrap();
            let measured = report.epochs[0].redistribution_bytes() as f64;
            let model = config_cost(&shape, &plan.config, p, p);
            // With N not divisible by P the partition is balanced within
            // one row, so measured bytes may deviate by at most
            // (#redistributions)·f_max·4 bytes from the continuous
            // formula.
            let expect = model.comm_elems * 4.0;
            let slack = 16.0 * 16.0 * 4.0;
            let has_nm_penalty = (0..2).any(|l| {
                plan.config.forward[l] == gnn_rdm::model::Order::GemmFirst
                    && plan.config.backward[l] == gnn_rdm::model::Order::GemmFirst
            });
            if has_nm_penalty {
                // Table IV charges 2·min(f_{l-1}, f_l) unconditionally for
                // the non-memoized weight-gradient SpMM; the executor skips
                // a redistribution whenever the needed layout is already
                // cached (always true at layer 1, whose input features
                // exist in both layouts for free), so it may move *less*
                // than the model — never more.
                assert!(
                    measured <= expect + slack,
                    "n={n} p={p} id={id}: measured {measured} above model {expect}"
                );
            } else {
                assert!(
                    (measured - expect).abs() <= slack,
                    "n={n} p={p} id={id}: measured {measured} vs model {expect}"
                );
            }
        }
    }
}

/// SpMM FMA counts must match the model exactly for all configs (the
/// sparse products are independent of partition rounding).
#[test]
fn every_2layer_config_matches_model_spmm_ops() {
    let ds = dataset(80, 600, 10, 4);
    let shape = GnnShape {
        n: ds.n(),
        nnz: ds.adj_norm.nnz(),
        feats: vec![10, 8, 4],
    };
    let p = 4;
    for id in 0..16 {
        let plan = Plan::from_id(id, 2, p);
        let cfg = TrainerConfig::rdm(p, plan.clone()).hidden(8).epochs(1);
        let report = train_gcn(&ds, &cfg).unwrap();
        let model = config_cost(&shape, &plan.config, p, p);
        assert_eq!(
            report.epochs[0].ops.spmm_fma, model.spmm_ops,
            "id={id} spmm ops"
        );
    }
}

/// GEMM FMA counts are order-independent and must match the model.
#[test]
fn gemm_ops_match_model_for_sampled_configs() {
    let ds = dataset(64, 500, 8, 4);
    let shape = GnnShape {
        n: 64,
        nnz: ds.adj_norm.nnz(),
        feats: vec![8, 8, 4],
    };
    let p = 2;
    for id in [0usize, 5, 10, 15] {
        let plan = Plan::from_id(id, 2, p);
        let cfg = TrainerConfig::rdm(p, plan.clone()).hidden(8).epochs(1);
        let report = train_gcn(&ds, &cfg).unwrap();
        let model = config_cost(&shape, &plan.config, p, p);
        // The executed system adds the weight-gradient GEMMs the model
        // folds into its 2× factor, plus nothing else; they must match.
        assert_eq!(
            report.epochs[0].ops.gemm_fma, model.gemm_ops,
            "id={id} gemm ops"
        );
    }
}

/// 3-layer plans: SpMM op counts still match the generic model.
#[test]
fn three_layer_spmm_ops_match_model() {
    let ds = dataset(60, 500, 9, 3);
    let p = 3;
    let shape = GnnShape {
        n: 60,
        nnz: ds.adj_norm.nnz(),
        feats: vec![9, 6, 6, 3],
    };
    for id in [0usize, 21, 42, 63, 10, 38] {
        let plan = Plan {
            config: gnn_rdm::model::OrderConfig::from_id(id, 3),
            r_a: p,
            memoize: true,
        };
        let cfg = TrainerConfig::rdm(p, plan.clone())
            .hidden(6)
            .layers(3)
            .epochs(1);
        let report = train_gcn(&ds, &cfg).unwrap();
        let model = config_cost(&shape, &plan.config, p, p);
        assert_eq!(
            report.epochs[0].ops.spmm_fma, model.spmm_ops,
            "3-layer id={id} spmm ops"
        );
    }
}

/// FMA counters and wire bytes are a function of the computation graph,
/// never of the kernel path: every forced lane width must reproduce the
/// scalar path's counts exactly, epoch by epoch. This is what makes the
/// fast device calibration sound — switching kernels may only change the
/// *rates* the counts are priced at.
#[test]
fn op_counts_are_kernel_path_invariant() {
    let ds = dataset(96, 800, 12, 5);
    let cfg = |mode| {
        TrainerConfig::rdm(4, Plan::from_id(5, 2, 4))
            .hidden(16)
            .epochs(2)
            .kernel_mode(mode)
    };
    let reference = train_gcn(&ds, &cfg(KernelMode::Scalar)).unwrap();
    for width in KernelWidth::all() {
        let fast = train_gcn(&ds, &cfg(KernelMode::Fast(width))).unwrap();
        for (e, (a, b)) in reference.epochs.iter().zip(&fast.epochs).enumerate() {
            assert_eq!(a.ops.spmm_fma, b.ops.spmm_fma, "{width:?} epoch {e} spmm");
            assert_eq!(a.ops.gemm_fma, b.ops.gemm_fma, "{width:?} epoch {e} gemm");
            assert_eq!(
                a.redistribution_bytes(),
                b.redistribution_bytes(),
                "{width:?} epoch {e} bytes"
            );
        }
    }
}

/// The two device calibrations price identical op counts, so the
/// simulated epoch speedup of `--fast-kernels` over scalar is pinned by
/// the calibration constants alone: the compute ratio must sit between
/// the measured SpMM and GEMM kernel speedups the fast rates encode, the
/// comm ratio must not move at all, and the total must improve.
#[test]
fn fast_calibration_bounds_simulated_speedup() {
    let ds = dataset(128, 1000, 16, 4);
    let cfg = |mode| {
        TrainerConfig::rdm(4, Plan::from_id(5, 2, 4))
            .hidden(32)
            .epochs(1)
            .kernel_mode(mode)
    };
    let scalar = train_gcn(&ds, &cfg(KernelMode::Scalar)).unwrap().epochs[0].sim;
    let fast = train_gcn(&ds, &cfg(KernelMode::Fast(KernelWidth::W8)))
        .unwrap()
        .epochs[0]
        .sim;
    let compute_ratio = scalar.compute_s / fast.compute_s;
    assert!(
        (1.7..=2.6).contains(&compute_ratio),
        "simulated compute speedup {compute_ratio} drifted outside the \
         [spmm, gemm] kernel-speedup envelope the calibration encodes"
    );
    assert!(
        (scalar.comm_s - fast.comm_s).abs() <= 1e-12 * scalar.comm_s.max(1.0),
        "kernel path must not change simulated comm time: {} vs {}",
        scalar.comm_s,
        fast.comm_s
    );
    assert!(
        fast.total_s < scalar.total_s,
        "fast calibration must predict a faster epoch"
    );
}

/// The CAGNET baseline's broadcast volume must match the paper's §II
/// formula `(P-1)·N·Σf` per epoch (forward f_in..f_h + backward f_h..f_out
/// widths).
#[test]
fn cagnet_broadcast_volume_matches_formula() {
    let n = 120;
    let ds = dataset(n, 1000, 16, 4);
    for p in [2usize, 4, 6] {
        let cfg = TrainerConfig::cagnet_1d(p).hidden(8).epochs(1);
        let report = train_gcn(&ds, &cfg).unwrap();
        let widths = 16 + 8 + 8 + 4; // fwd: f_in, f_h; bwd: f_out, f_h
        let expect = ((p - 1) * n * widths * 4) as u64;
        assert_eq!(report.epochs[0].broadcast_bytes(), expect, "p={p}");
    }
}
