//! Property-based tests for the dense kernels: the algebraic identities
//! that the distributed execution relies on.

use proptest::prelude::*;
use rdm_dense::{
    allclose, gemm, gemm_nt, gemm_tn, hstack, part_range, split_cols, split_rows, vstack, Mat,
};

fn mat_strategy(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..max_dim, 1..max_dim, 0u64..1000).prop_map(|(r, c, seed)| Mat::random(r, c, 1.0, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (AB)C == A(BC) — the associativity §III-B exploits to reorder the
    /// SpMM/GEMM chain.
    #[test]
    fn gemm_is_associative(
        m in 1usize..12, k in 1usize..12, n in 1usize..12, q in 1usize..12,
        seed in 0u64..1000,
    ) {
        let a = Mat::random(m, k, 1.0, seed);
        let b = Mat::random(k, n, 1.0, seed + 1);
        let c = Mat::random(n, q, 1.0, seed + 2);
        let left = gemm(&gemm(&a, &b), &c);
        let right = gemm(&a, &gemm(&b, &c));
        prop_assert!(allclose(&left, &right, 1e-3));
    }

    /// Row-sliced GEMM is exact: stacking per-slice products equals the
    /// whole product (the Fig. 2b communication-free identity).
    #[test]
    fn row_sliced_gemm_identity(
        m in 2usize..20, k in 1usize..10, n in 1usize..10,
        p in 1usize..5, seed in 0u64..1000,
    ) {
        let a = Mat::random(m, k, 1.0, seed);
        let w = Mat::random(k, n, 1.0, seed + 1);
        let whole = gemm(&a, &w);
        let parts: Vec<Mat> = split_rows(&a, p).iter().map(|s| gemm(s, &w)).collect();
        prop_assert!(allclose(&vstack(&parts), &whole, 1e-4));
    }

    /// (AᵀB) == (BᵀA)ᵀ.
    #[test]
    fn tn_nt_transpose_relation(
        k in 1usize..16, m in 1usize..8, n in 1usize..8, seed in 0u64..1000,
    ) {
        let a = Mat::random(k, m, 1.0, seed);
        let b = Mat::random(k, n, 1.0, seed + 1);
        let ab = gemm_tn(&a, &b);
        let ba = gemm_tn(&b, &a);
        prop_assert!(allclose(&ab, &ba.transpose(), 1e-4));
    }

    /// A·Bᵀ via gemm_nt equals explicit transpose then gemm.
    #[test]
    fn nt_matches_explicit(
        m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000,
    ) {
        let a = Mat::random(m, k, 1.0, seed);
        let b = Mat::random(n, k, 1.0, seed + 1);
        prop_assert!(allclose(&gemm_nt(&a, &b), &gemm(&a, &b.transpose()), 1e-4));
    }

    /// split/stack roundtrips for any part count.
    #[test]
    fn split_stack_roundtrip(m in mat_strategy(24), p in 1usize..6) {
        prop_assert_eq!(&hstack(&split_cols(&m, p)), &m);
        prop_assert_eq!(&vstack(&split_rows(&m, p)), &m);
    }

    /// Weight-gradient decomposition: AᵀB == Σ_r A_rᵀB_r over row slices —
    /// the partial + all-reduce identity.
    #[test]
    fn weight_grad_decomposition(
        n in 2usize..24, fa in 1usize..8, fb in 1usize..8,
        p in 1usize..5, seed in 0u64..1000,
    ) {
        let a = Mat::random(n, fa, 1.0, seed);
        let b = Mat::random(n, fb, 1.0, seed + 1);
        let whole = gemm_tn(&a, &b);
        let mut acc = Mat::zeros(fa, fb);
        for (sa, sb) in split_rows(&a, p).iter().zip(split_rows(&b, p).iter()) {
            rdm_dense::add_assign(&mut acc, &gemm_tn(sa, sb));
        }
        prop_assert!(allclose(&acc, &whole, 1e-4));
    }

    /// Transpose is an involution and preserves the Frobenius norm.
    #[test]
    fn transpose_properties(m in mat_strategy(24)) {
        let t = m.transpose();
        prop_assert_eq!(&t.transpose(), &m);
        prop_assert!((t.fro_norm() - m.fro_norm()).abs() < 1e-4);
    }

    /// part_range is a partition: contiguous, complete, balanced.
    #[test]
    fn part_range_partitions(n in 0usize..200, p in 1usize..9) {
        let mut end = 0;
        let mut min = usize::MAX;
        let mut max = 0;
        for r in 0..p {
            let rng = part_range(n, p, r);
            prop_assert_eq!(rng.start, end);
            end = rng.end;
            min = min.min(rng.len());
            max = max.max(rng.len());
        }
        prop_assert_eq!(end, n);
        prop_assert!(max - min <= 1);
    }

    /// softmax rows are a probability distribution; log_softmax consistent.
    #[test]
    fn softmax_probability_axioms(m in mat_strategy(16)) {
        let s = rdm_dense::softmax_rows(&m);
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
        let ls = rdm_dense::log_softmax_rows(&m);
        prop_assert!(ls.as_slice().iter().all(|&v| v <= 1e-6));
    }

    /// relu/relu_backward consistency: gradient flows exactly where the
    /// activation is positive.
    #[test]
    fn relu_gradient_support(m in mat_strategy(16), seed in 0u64..1000) {
        let g = Mat::random(m.rows(), m.cols(), 1.0, seed);
        let act = rdm_dense::relu(&m);
        let masked = rdm_dense::relu_backward(&g, &m);
        for (i, (&a, (&gm, &go))) in act
            .as_slice()
            .iter()
            .zip(g.as_slice().iter().zip(masked.as_slice()))
            .enumerate()
        {
            if a > 0.0 {
                prop_assert_eq!(gm, go, "index {}", i);
            } else {
                prop_assert_eq!(go, 0.0, "index {}", i);
            }
        }
    }
}
