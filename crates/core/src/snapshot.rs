//! Trained-weight export/import for the serving path.
//!
//! A [`WeightSnapshot`] is the bridge between offline training
//! ([`train_gcn`](crate::train_gcn) stores one in
//! [`TrainReport::weights`](crate::TrainReport)) and online inference
//! (`rdm-serve` loads one and runs forward-only). The binary format is
//! **byte-exact**: every f32 round-trips through its IEEE-754 bit pattern,
//! so a snapshot saved on one run and loaded on another reproduces
//! bitwise-identical logits.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic  b"RDMW"        4 bytes
//! version u32 = 1       4 bytes
//! layers  u32           4 bytes
//! per layer: rows u32, cols u32, then rows*cols f32 bit patterns
//! ```
//!
//! Layer widths are implied by the weight shapes (`feats[0] = w[0].rows`,
//! `feats[l] = w[l-1].cols`), so the header stores nothing the matrices do
//! not already pin down.

use crate::gcn::GcnWeights;
use rdm_dense::Mat;

/// Magic prefix of the on-disk format.
const MAGIC: &[u8; 4] = b"RDMW";
/// Current format version.
const VERSION: u32 = 1;

/// A replicated set of trained GCN weights, detached from any trainer.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightSnapshot {
    /// `w[l-1]` has shape `feats[l-1] × feats[l]`.
    pub w: Vec<Mat>,
}

impl WeightSnapshot {
    /// Snapshot a trainer's weights (weights are replicated, so any rank's
    /// copy is *the* copy).
    pub fn from_weights(weights: &GcnWeights) -> Self {
        WeightSnapshot {
            w: weights.w.clone(),
        }
    }

    /// Rebuild trainer-shaped weights from the snapshot.
    pub fn to_weights(&self) -> GcnWeights {
        GcnWeights { w: self.w.clone() }
    }

    /// Layer count.
    pub fn layers(&self) -> usize {
        self.w.len()
    }

    /// The layer widths `[f_0, f_1, ..., f_L]` these weights connect.
    pub fn feats(&self) -> Vec<usize> {
        let mut f = Vec::with_capacity(self.w.len() + 1);
        f.push(self.w.first().map(Mat::rows).unwrap_or(0));
        for m in &self.w {
            f.push(m.cols());
        }
        f
    }

    /// Serialize to the byte-exact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload: usize = self.w.iter().map(|m| 8 + m.len() * 4).sum();
        let mut out = Vec::with_capacity(12 + payload);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.w.len() as u32).to_le_bytes());
        for m in &self.w {
            out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
            out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
            for v in m.as_slice() {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Deserialize the binary format.
    ///
    /// # Errors
    /// Describes the first structural problem (bad magic, truncation,
    /// shape mismatch between adjacent layers, trailing bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            let end = pos
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| format!("snapshot truncated at byte {pos}"))?;
            let s = &bytes[*pos..end];
            *pos = end;
            Ok(s)
        };
        let u32_at = |pos: &mut usize| -> Result<u32, String> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()))
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err("not a weight snapshot (bad magic)".into());
        }
        let version = u32_at(&mut pos)?;
        if version != VERSION {
            return Err(format!(
                "unsupported snapshot version {version} (this build reads {VERSION})"
            ));
        }
        let layers = u32_at(&mut pos)? as usize;
        if layers == 0 {
            return Err("snapshot has zero layers".into());
        }
        let mut w = Vec::with_capacity(layers);
        for l in 0..layers {
            let rows = u32_at(&mut pos)? as usize;
            let cols = u32_at(&mut pos)? as usize;
            if let Some(prev) = w.last() {
                let prev: &Mat = prev;
                if prev.cols() != rows {
                    return Err(format!(
                        "layer {l} expects {} input features but layer {} emits {}",
                        rows,
                        l - 1,
                        prev.cols()
                    ));
                }
            }
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| format!("layer {l} shape {rows}x{cols} overflows"))?;
            let raw = take(&mut pos, n * 4)?;
            let data: Vec<f32> = raw
                .chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
                .collect();
            w.push(Mat::from_vec(rows, cols, data));
        }
        if pos != bytes.len() {
            return Err(format!(
                "snapshot has {} trailing byte(s) after layer data",
                bytes.len() - pos
            ));
        }
        Ok(WeightSnapshot { w })
    }

    /// Write the snapshot to a file.
    ///
    /// # Errors
    /// Forwards the I/O error as a description.
    pub fn save(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_bytes()).map_err(|e| format!("{path}: {e}"))
    }

    /// Read a snapshot from a file.
    ///
    /// # Errors
    /// Forwards I/O and format errors as a description.
    pub fn load(path: &str) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        Self::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightSnapshot {
        WeightSnapshot::from_weights(&GcnWeights::init(&[16, 8, 4], 7))
    }

    #[test]
    fn roundtrip_is_byte_exact() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = WeightSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.layers(), back.layers());
        for (a, b) in snap.w.iter().zip(&back.w) {
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Serialization itself is deterministic.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn feats_recovers_layer_widths() {
        assert_eq!(sample().feats(), vec![16, 8, 4]);
    }

    #[test]
    fn special_float_values_survive() {
        let w = Mat::from_vec(
            1,
            4,
            vec![f32::NAN, f32::INFINITY, -0.0, f32::MIN_POSITIVE / 2.0],
        );
        let snap = WeightSnapshot { w: vec![w] };
        let back = WeightSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        for (x, y) in snap.w[0].as_slice().iter().zip(back.w[0].as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let good = sample().to_bytes();
        assert!(WeightSnapshot::from_bytes(b"nope").is_err());
        assert!(WeightSnapshot::from_bytes(&good[..good.len() - 1])
            .unwrap_err()
            .contains("truncated"));
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(WeightSnapshot::from_bytes(&trailing)
            .unwrap_err()
            .contains("trailing"));
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(WeightSnapshot::from_bytes(&bad_version)
            .unwrap_err()
            .contains("version"));
        // Break the layer-1 / layer-2 width chain.
        let mut mismatched = Vec::new();
        mismatched.extend_from_slice(b"RDMW");
        mismatched.extend_from_slice(&1u32.to_le_bytes());
        mismatched.extend_from_slice(&2u32.to_le_bytes());
        mismatched.extend_from_slice(&1u32.to_le_bytes()); // 1x1
        mismatched.extend_from_slice(&1u32.to_le_bytes());
        mismatched.extend_from_slice(&0f32.to_bits().to_le_bytes());
        mismatched.extend_from_slice(&3u32.to_le_bytes()); // 3x1: wants 3 inputs
        mismatched.extend_from_slice(&1u32.to_le_bytes());
        assert!(WeightSnapshot::from_bytes(&mismatched)
            .unwrap_err()
            .contains("features"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("rdm-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.rdmw");
        let path = path.to_str().unwrap();
        let snap = sample();
        snap.save(path).unwrap();
        let back = WeightSnapshot::load(path).unwrap();
        assert_eq!(snap.to_bytes(), back.to_bytes());
        std::fs::remove_file(path).ok();
        assert!(WeightSnapshot::load(path).is_err());
    }
}
