//! Whole-network cost evaluation and the Pareto filter (§IV-B, Table VI).

use crate::config::{Order, OrderConfig};
use crate::layer::{
    backward_layer_cost_with_sparsity, forward_layer_cost_with_sparsity, redistribution_elems,
    LayerDims,
};

/// The shape of a GCN training problem: vertex count, edge count (nnz of
/// the normalized adjacency), and the feature width of every boundary —
/// `feats[0] = f_in`, `feats[L] = f_out`, `feats.len() = L+1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GnnShape {
    pub n: usize,
    pub nnz: usize,
    pub feats: Vec<usize>,
}

impl GnnShape {
    /// A GCN with `layers` layers and a uniform hidden width.
    pub fn gcn(
        n: usize,
        nnz: usize,
        f_in: usize,
        hidden: usize,
        f_out: usize,
        layers: usize,
    ) -> Self {
        assert!(layers >= 1);
        let mut feats = Vec::with_capacity(layers + 1);
        feats.push(f_in);
        for _ in 1..layers {
            feats.push(hidden);
        }
        feats.push(f_out);
        GnnShape { n, nnz, feats }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.feats.len() - 1
    }

    /// The [`LayerDims`] of layer `l` (1-based).
    pub fn layer_dims(&self, l: usize) -> LayerDims {
        LayerDims {
            f_in: self.feats[l - 1],
            f_out: self.feats[l],
        }
    }
}

/// Total cost of one training epoch (forward + backward) for a configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cost {
    /// Communication volume in elements (global, summed over ranks).
    pub comm_elems: f64,
    /// SpMM FMA count.
    pub spmm_ops: f64,
    /// GEMM FMA count (order-independent; carried for the device model).
    pub gemm_ops: f64,
}

impl Cost {
    /// Pareto dominance over (communication, SpMM ops): true when `self` is
    /// no worse in both and strictly better in at least one.
    pub fn dominates(&self, other: &Cost) -> bool {
        let le = self.comm_elems <= other.comm_elems && self.spmm_ops <= other.spmm_ops;
        let lt = self.comm_elems < other.comm_elems || self.spmm_ops < other.spmm_ops;
        le && lt
    }
}

/// Cost of running one epoch with configuration `cfg` on `p` ranks with
/// adjacency replication `r_a` (use `r_a = p` for full replication).
///
/// Implements the composition rules of §IV-A (verified against Table IV):
///
/// * intra-layer cost per [`crate::layer::forward_layer_cost`] /
///   [`crate::layer::backward_layer_cost`];
/// * an extra redistribution of `f_l` between adjacent forward layers with
///   the same order, and of `f_l` between adjacent backward layers with the
///   same order;
/// * an extra `f_out` redistribution after the last forward layer when it
///   is GEMM-first (the loss needs row-sliced embeddings), and an extra
///   `f_out` before the last backward layer when it is SpMM-first (the
///   gradient leaves the loss row-sliced but the SpMM needs it
///   column-sliced).
pub fn config_cost(shape: &GnnShape, cfg: &OrderConfig, p: usize, r_a: usize) -> Cost {
    config_cost_with_sparsity(shape, cfg, p, r_a, 1.0)
}

/// [`config_cost`] re-priced for the sparsity-aware redistribution path:
/// every redistribution term — intra-layer, inter-layer boundary, loss and
/// gradient boundaries — is scaled by `sigma`, the expected fraction of
/// intermediate rows that carry data (`1.0 - empty_row_fraction` of the
/// normalized adjacency is the natural estimate, since rows of `Â·X` are
/// all-zero exactly where `Â` has empty rows). Panel broadcasts under
/// `R_A < P` stay dense — they do not ride the indexed-strip path. With
/// `sigma = 1.0` this is exactly [`config_cost`], keeping the paper's
/// Table IV/VI formulas as the dense bound.
pub fn config_cost_with_sparsity(
    shape: &GnnShape,
    cfg: &OrderConfig,
    p: usize,
    r_a: usize,
    sigma: f64,
) -> Cost {
    assert!(
        (0.0..=1.0).contains(&sigma),
        "sparsity factor {sigma} outside [0, 1]"
    );
    let l = shape.layers();
    assert_eq!(cfg.layers(), l, "config layer count mismatch");
    let mut total = Cost::default();
    let n = shape.n;
    let nnz = shape.nnz;
    // Boundary conversions (inter-layer, loss, gradient) are full-cluster
    // all-to-alls under full replication, and row-group all-to-alls under
    // the R_A < P tiling.
    let boundary = |f: usize| -> f64 {
        sigma
            * if r_a == p {
                redistribution_elems(n, f, p)
            } else {
                crate::layer::group_redistribution_elems(n, f, r_a)
            }
    };

    // Forward pass.
    for layer in 1..=l {
        let c = forward_layer_cost_with_sparsity(
            shape.layer_dims(layer),
            cfg.forward[layer - 1],
            n,
            nnz,
            p,
            r_a,
            sigma,
        );
        total.comm_elems += c.comm_elems;
        total.spmm_ops += c.spmm_ops;
        total.gemm_ops += c.gemm_ops;
        // Inter-layer redistribution when adjacent forward layers share an
        // order (the output distribution of one mismatches the input
        // requirement of the next).
        if layer < l && cfg.forward[layer - 1] == cfg.forward[layer] {
            total.comm_elems += boundary(shape.feats[layer]);
        }
    }
    // Loss boundary: final embedding must be row-sliced.
    if cfg.forward[l - 1] == Order::GemmFirst {
        total.comm_elems += boundary(shape.feats[l]);
    }
    // Gradient boundary: the loss produces a row-sliced G^L; an SpMM-first
    // last backward layer needs it column-sliced.
    if cfg.backward[l - 1] == Order::SpmmFirst {
        total.comm_elems += boundary(shape.feats[l]);
    }
    // Backward pass, executed from layer L down to 1.
    for layer in (1..=l).rev() {
        let fwd_was_s = cfg.forward[layer - 1] == Order::SpmmFirst;
        let c = backward_layer_cost_with_sparsity(
            shape.layer_dims(layer),
            cfg.backward[layer - 1],
            fwd_was_s,
            n,
            nnz,
            p,
            r_a,
            sigma,
        );
        total.comm_elems += c.comm_elems;
        total.spmm_ops += c.spmm_ops;
        total.gemm_ops += c.gemm_ops;
        // Inter-layer boundary between backward layer `layer` and
        // `layer-1`: the crossing matrix is G^{layer-1} of width
        // `feats[layer-1]`.
        if layer > 1 && cfg.backward[layer - 1] == cfg.backward[layer - 2] {
            total.comm_elems += boundary(shape.feats[layer - 1]);
        }
    }
    total
}

/// Every configuration with its cost, ordered by ID.
pub fn all_config_costs(shape: &GnnShape, p: usize, r_a: usize) -> Vec<(OrderConfig, Cost)> {
    all_config_costs_with_sparsity(shape, p, r_a, 1.0)
}

/// [`all_config_costs`] priced with a row-sparsity factor.
pub fn all_config_costs_with_sparsity(
    shape: &GnnShape,
    p: usize,
    r_a: usize,
    sigma: f64,
) -> Vec<(OrderConfig, Cost)> {
    OrderConfig::enumerate(shape.layers())
        .into_iter()
        .map(|cfg| {
            let c = config_cost_with_sparsity(shape, &cfg, p, r_a, sigma);
            (cfg, c)
        })
        .collect()
}

/// The Pareto-optimal configurations with respect to (communication volume,
/// SpMM operations) — §IV-B / Table VI. Ties collapse: among configurations
/// with identical cost vectors only the lowest ID is kept, matching how the
/// paper lists candidate IDs.
pub fn pareto_configs(shape: &GnnShape, p: usize, r_a: usize) -> Vec<(OrderConfig, Cost)> {
    pareto_configs_with_sparsity(shape, p, r_a, 1.0)
}

/// [`pareto_configs`] priced with a row-sparsity factor. With `r_a == p`
/// the factor scales every candidate's communication uniformly, so the
/// Pareto *membership* matches the dense pricing; under `R_A < P` the
/// dense broadcast share shifts the trade-off and the set can differ.
/// Either way the device-model ranking downstream sees the re-priced
/// volumes.
pub fn pareto_configs_with_sparsity(
    shape: &GnnShape,
    p: usize,
    r_a: usize,
    sigma: f64,
) -> Vec<(OrderConfig, Cost)> {
    let all = all_config_costs_with_sparsity(shape, p, r_a, sigma);
    let mut keep = Vec::new();
    'outer: for (i, (cfg, cost)) in all.iter().enumerate() {
        for (j, (_, other)) in all.iter().enumerate() {
            if other.dominates(cost) {
                continue 'outer;
            }
            // Identical cost vector: keep only the first (lowest ID).
            if j < i && other.comm_elems == cost.comm_elems && other.spmm_ops == cost.spmm_ops {
                continue 'outer;
            }
        }
        keep.push((cfg.clone(), *cost));
    }
    keep
}

/// Just the Pareto-optimal IDs (Table VI's "Candidates IDs" column).
pub fn pareto_ids(shape: &GnnShape, p: usize, r_a: usize) -> Vec<usize> {
    pareto_configs(shape, p, r_a)
        .iter()
        .map(|(cfg, _)| cfg.id())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table VI datasets: (name, f_in, f_h, f_out, expected candidate IDs).
    /// The paper computes these with the 2-layer, 128-hidden model; the IDs
    /// are independent of N/nnz/P because every term scales by the same
    /// nnz or (P-1)/P·N factor.
    const TABLE6: &[(&str, usize, usize, usize, &[usize])] = &[
        ("OGB-Arxiv", 128, 128, 40, &[5]),
        ("OGB-MAG", 128, 128, 349, &[10]),
        ("OGB-Products", 100, 128, 47, &[5]),
        ("Reddit", 602, 128, 41, &[2, 3, 10]),
        ("Web-Google", 256, 128, 100, &[2, 3, 10]),
        ("Com-Orkut", 128, 128, 100, &[5, 10]),
        ("CAMI Airways", 256, 128, 25, &[2, 3, 10]),
        ("CAMI Oral", 256, 128, 32, &[2, 3, 10]),
    ];

    #[test]
    fn reproduces_table6_pareto_candidates() {
        for &(name, f_in, f_h, f_out, expect) in TABLE6 {
            let shape = GnnShape::gcn(10_000, 100_000, f_in, f_h, f_out, 2);
            let ids = pareto_ids(&shape, 8, 8);
            assert_eq!(ids, expect, "dataset {name}");
        }
    }

    #[test]
    fn pareto_ids_independent_of_p_and_scale() {
        let shape_a = GnnShape::gcn(1_000, 5_000, 602, 128, 41, 2);
        let shape_b = GnnShape::gcn(232_965, 114_848_857, 602, 128, 41, 2);
        for p in [2, 4, 8] {
            assert_eq!(pareto_ids(&shape_a, p, p), pareto_ids(&shape_b, 8, 8));
        }
    }

    #[test]
    fn pareto_set_is_nonempty_and_nondominated() {
        let shape = GnnShape::gcn(5_000, 60_000, 64, 32, 10, 2);
        let pareto = pareto_configs(&shape, 4, 4);
        assert!(!pareto.is_empty());
        for (_, a) in &pareto {
            for (_, b) in &pareto {
                assert!(!a.dominates(b), "pareto set contains dominated entry");
            }
        }
    }

    #[test]
    fn dominance_definition() {
        let a = Cost {
            comm_elems: 1.0,
            spmm_ops: 1.0,
            gemm_ops: 0.0,
        };
        let b = Cost {
            comm_elems: 2.0,
            spmm_ops: 1.0,
            gemm_ops: 0.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a));
    }

    #[test]
    fn three_layer_enumeration_has_64_configs() {
        let shape = GnnShape::gcn(1_000, 10_000, 128, 128, 40, 3);
        let all = all_config_costs(&shape, 8, 8);
        assert_eq!(all.len(), 64);
        let pareto = pareto_configs(&shape, 8, 8);
        assert!(pareto.len() < 64);
        assert!(!pareto.is_empty());
    }

    #[test]
    fn gemm_ops_are_order_independent() {
        let shape = GnnShape::gcn(1_000, 10_000, 64, 32, 8, 2);
        let all = all_config_costs(&shape, 4, 4);
        let g0 = all[0].1.gemm_ops;
        assert!(all.iter().all(|(_, c)| c.gemm_ops == g0));
    }

    #[test]
    fn replication_reduces_total_comm() {
        // With R_A < P every configuration pays broadcast traffic; raising
        // R_A must never increase communication.
        let shape = GnnShape::gcn(10_000, 200_000, 128, 128, 40, 2);
        let cfg = OrderConfig::from_id(5, 2);
        let p = 8;
        let mut prev = f64::INFINITY;
        for r_a in [1, 2, 4, 8] {
            let c = config_cost(&shape, &cfg, p, r_a);
            assert!(c.comm_elems < prev);
            prev = c.comm_elems;
        }
    }

    #[test]
    fn sparsity_factor_scales_redistribution_but_not_broadcast() {
        let shape = GnnShape::gcn(10_000, 200_000, 128, 128, 40, 2);
        let cfg = OrderConfig::from_id(5, 2);
        // sigma = 1 is exactly the dense pricing.
        assert_eq!(
            config_cost_with_sparsity(&shape, &cfg, 8, 8, 1.0),
            config_cost(&shape, &cfg, 8, 8)
        );
        // Full replication: every comm term is a redistribution, so the
        // volume scales linearly in sigma while compute is untouched.
        let dense = config_cost(&shape, &cfg, 8, 8);
        let half = config_cost_with_sparsity(&shape, &cfg, 8, 8, 0.5);
        assert!((half.comm_elems - 0.5 * dense.comm_elems).abs() < 1e-6);
        assert_eq!(half.spmm_ops, dense.spmm_ops);
        assert_eq!(half.gemm_ops, dense.gemm_ops);
        // R_A < P: the panel broadcast stays dense, so sigma = 0 leaves
        // exactly the broadcast volume standing.
        let tiled = config_cost_with_sparsity(&shape, &cfg, 8, 2, 0.0);
        assert!(tiled.comm_elems > 0.0);
        let tiled_dense = config_cost(&shape, &cfg, 8, 2);
        assert!(tiled.comm_elems < tiled_dense.comm_elems);
    }

    #[test]
    fn sparse_pareto_membership_matches_dense_under_full_replication() {
        // Uniform scaling of one axis preserves dominance, so plan
        // selection keeps choosing among the paper's Table VI candidates.
        for &(name, f_in, f_h, f_out, _) in TABLE6 {
            let shape = GnnShape::gcn(10_000, 100_000, f_in, f_h, f_out, 2);
            let dense: Vec<usize> = pareto_configs(&shape, 8, 8)
                .iter()
                .map(|(c, _)| c.id())
                .collect();
            let sparse: Vec<usize> = pareto_configs_with_sparsity(&shape, 8, 8, 0.37)
                .iter()
                .map(|(c, _)| c.id())
                .collect();
            assert_eq!(dense, sparse, "dataset {name}");
        }
    }

    #[test]
    fn rdm_total_volume_is_p_independent() {
        // The headline scalability claim: with full replication, total
        // communication volume is (P-1)/P·N·Σ(widths) — essentially
        // constant in P, approaching N·Σ(widths).
        let shape = GnnShape::gcn(10_000, 200_000, 128, 128, 40, 2);
        let cfg = OrderConfig::from_id(5, 2);
        let c2 = config_cost(&shape, &cfg, 2, 2);
        let c8 = config_cost(&shape, &cfg, 8, 8);
        // Ratio (P-1)/P: 0.5 → 0.875, less than 2× growth from 2 to 8 GPUs.
        assert!(c8.comm_elems / c2.comm_elems < 2.0);
        // While a CAGNET-style broadcast (modelled by R_A = 1) grows ~7x.
        let b2 = config_cost(&shape, &OrderConfig::all_spmm_first(2), 2, 1);
        let b8 = config_cost(&shape, &OrderConfig::all_spmm_first(2), 8, 1);
        assert!(b8.comm_elems / b2.comm_elems > 5.0);
    }
}
