//! Property-based tests of the collective fabric: the algebraic contracts
//! every trainer relies on, over randomized shapes and cluster sizes.

use proptest::prelude::*;
use rdm_comm::{ChunkAxis, Cluster, CollectiveKind, FaultPlan};
use rdm_dense::{allclose, part_range, Mat};

const K: CollectiveKind = CollectiveKind::Other;

fn chaos_base() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Broadcast delivers a bit-identical copy to every rank, from any
    /// root.
    #[test]
    fn broadcast_delivers_exact_copies(
        p in 1usize..6,
        root_pick in 0usize..6,
        rows in 1usize..20,
        cols in 1usize..10,
        seed in 0u64..500,
    ) {
        let root = root_pick % p;
        let payload = Mat::random(rows, cols, 1.0, seed);
        let expect = payload.clone();
        let out = Cluster::new(p).run(move |ctx| {
            let m = (ctx.rank() == root).then(|| payload.clone());
            ctx.broadcast(root, m, K)
        });
        for got in &out.results {
            prop_assert_eq!(got, &expect);
        }
    }

    /// All-to-all is an ownership transpose: received[i][j] on rank j
    /// equals sent[j] by rank i.
    #[test]
    fn all_to_all_is_a_transpose(p in 1usize..6, seed in 0u64..500) {
        let out = Cluster::new(p).run(move |ctx| {
            let parts: Vec<Mat> = (0..p)
                .map(|j| Mat::random(2, 2, 1.0, seed ^ ((ctx.rank() * 31 + j) as u64)))
                .collect();
            ctx.all_to_all(parts, K)
        });
        for (j, received) in out.results.iter().enumerate() {
            for (i, m) in received.iter().enumerate() {
                let expect = Mat::random(2, 2, 1.0, seed ^ ((i * 31 + j) as u64));
                prop_assert_eq!(m, &expect, "rank {} from rank {}", j, i);
            }
        }
    }

    /// H→V followed by V→H restores every rank's row slice exactly, for
    /// any matrix shape (including ones that do not divide P).
    #[test]
    fn redistribution_roundtrip(
        p in 1usize..6,
        n in 1usize..40,
        f in 1usize..16,
        seed in 0u64..500,
    ) {
        let global = Mat::random(n, f, 1.0, seed);
        let g2 = global.clone();
        let out = Cluster::new(p).run(move |ctx| {
            let r = part_range(n, p, ctx.rank());
            let local = g2.row_block(r.start, r.end);
            let v = ctx.redistribute_h_to_v(&local, K);
            ctx.redistribute_v_to_h(&v, K)
        });
        for (rank, got) in out.results.iter().enumerate() {
            let r = part_range(n, p, rank);
            prop_assert_eq!(got, &global.row_block(r.start, r.end));
        }
    }

    /// The H→V redistribution moves exactly Σ_{r≠owner} bytes — never
    /// more than (P-1)/P of the matrix, and exactly that when P divides
    /// both dimensions.
    #[test]
    fn redistribution_volume_bounded(
        p in 2usize..6,
        n_mult in 1usize..6,
        f_mult in 1usize..4,
    ) {
        let n = n_mult * p;
        let f = f_mult * p;
        let out = Cluster::new(p).run(move |ctx| {
            let r = part_range(n, p, ctx.rank());
            let local = Mat::zeros(r.len(), f);
            ctx.redistribute_h_to_v(&local, CollectiveKind::Redistribute);
        });
        let total: u64 = out
            .stats
            .iter()
            .map(|s| s.bytes(CollectiveKind::Redistribute))
            .sum();
        let exact = ((p - 1) * n * f * 4 / p) as u64;
        prop_assert_eq!(total, exact);
    }

    /// Ring and naive all-reduce agree numerically for any payload shape.
    #[test]
    fn ring_equals_naive_allreduce(
        p in 1usize..6,
        rows in 1usize..24,
        cols in 1usize..8,
        seed in 0u64..500,
    ) {
        let out = Cluster::new(p).run(move |ctx| {
            let m = Mat::random(rows, cols, 1.0, seed ^ ctx.rank() as u64);
            let naive = ctx.all_reduce_sum(m.clone(), K);
            let ring = ctx.all_reduce_ring(m, K);
            (naive, ring)
        });
        for (naive, ring) in &out.results {
            prop_assert!(allclose(naive, ring, 1e-4));
        }
    }

    /// All-gather returns every rank's contribution in rank order on
    /// every rank.
    #[test]
    fn all_gather_order_and_content(p in 1usize..6, seed in 0u64..500) {
        let out = Cluster::new(p).run(move |ctx| {
            let part = Mat::random(1, 3, 1.0, seed ^ ctx.rank() as u64);
            ctx.all_gather(part, K)
        });
        for parts in &out.results {
            prop_assert_eq!(parts.len(), p);
            for (i, m) in parts.iter().enumerate() {
                let expect = Mat::random(1, 3, 1.0, seed ^ i as u64);
                prop_assert_eq!(m, &expect);
            }
        }
    }

    /// The chunked all-to-all is bitwise the plain all-to-all for *any*
    /// chunk count — including counts that don't divide the split axis
    /// (ragged tails) and counts exceeding it (empty chunks) — on both
    /// axes.
    #[test]
    fn chunked_all_to_all_equals_blocking(
        p in 1usize..6,
        rows in 1usize..12,
        cols in 1usize..9,
        chunks in 1usize..20,
        by_rows in 0usize..2,
        seed in 0u64..500,
    ) {
        let axis = if by_rows == 1 { ChunkAxis::Rows } else { ChunkAxis::Cols };
        let make = move |me: usize| -> Vec<Mat> {
            (0..p)
                .map(|j| Mat::random(rows, cols, 1.0, seed ^ ((me * 31 + j) as u64)))
                .collect()
        };
        let blocking = Cluster::new(p).run(move |ctx| ctx.all_to_all(make(ctx.rank()), K));
        let chunked = Cluster::new(p)
            .run(move |ctx| ctx.all_to_all_chunked(make(ctx.rank()), axis, chunks, K));
        for (rank, (b, c)) in blocking.results.iter().zip(&chunked.results).enumerate() {
            prop_assert_eq!(b, c, "rank {} chunked payload diverged", rank);
        }
        // Payload bytes are identical; only message counts scale with
        // the (non-empty) chunk count.
        for (sb, sc) in blocking.stats.iter().zip(&chunked.stats) {
            prop_assert_eq!(sb.bytes(K), sc.bytes(K));
            prop_assert!(sc.messages(K) >= sb.messages(K));
        }
    }

    /// A chunked H→V redistribution followed by a chunked V→H one
    /// restores every rank's slice exactly, via the same all-to-all
    /// algebra the engine's Row→Col→Row path uses.
    #[test]
    fn chunked_redistribution_roundtrip(
        p in 1usize..6,
        n in 1usize..40,
        f in 1usize..16,
        chunks in 1usize..24,
        seed in 0u64..500,
    ) {
        let global = Mat::random(n, f, 1.0, seed);
        let g2 = global.clone();
        let out = Cluster::new(p).run(move |ctx| {
            let me = ctx.rank();
            let r = part_range(n, p, me);
            let local = g2.row_block(r.start, r.end);
            // H→V: split my row slice by column ownership, chunk along
            // columns (the strips the pipelined SpMM consumes).
            let parts: Vec<Mat> = (0..p)
                .map(|j| {
                    let c = part_range(f, p, j);
                    local.col_block(c.start, c.end)
                })
                .collect();
            let got = ctx.all_to_all_chunked(parts, ChunkAxis::Cols, chunks, K);
            let mine = part_range(f, p, me);
            let v = rdm_dense::vstack(&got);
            assert_eq!(v.cols(), mine.len());
            // V→H: split the column slice by row ownership, chunk along
            // rows, and reassemble my original slice.
            let back: Vec<Mat> = (0..p)
                .map(|j| {
                    let rr = part_range(n, p, j);
                    v.row_block(rr.start, rr.end)
                })
                .collect();
            let got = ctx.all_to_all_chunked(back, ChunkAxis::Rows, chunks, K);
            rdm_dense::hstack(&got)
        });
        for (rank, got) in out.results.iter().enumerate() {
            let r = part_range(n, p, rank);
            prop_assert_eq!(got, &global.row_block(r.start, r.end));
        }
    }

    /// Chunked collectives ride the same envelope protocol as everything
    /// else: under seeded drops, reordering and stragglers the results
    /// and payload counters are bit-identical to the clean run.
    #[test]
    fn chunked_all_to_all_bitwise_under_chaos(
        p in 2usize..6,
        chunks in 1usize..10,
        drop in 0.0f64..0.4,
        seed in 0u64..32,
    ) {
        let prog = move |ctx: &rdm_comm::RankCtx| {
            let parts: Vec<Mat> = (0..p)
                .map(|j| Mat::random(5, 7, 1.0, (ctx.rank() * 31 + j) as u64))
                .collect();
            ctx.all_to_all_chunked(parts, ChunkAxis::Cols, chunks, K)
        };
        let plan = FaultPlan::new(chaos_base() ^ seed ^ 0xA17)
            .drop_rate(drop)
            .delay(0.2, 3)
            .straggler(0.02, 20_000);
        let clean = Cluster::new(p).run(prog);
        let faulty = Cluster::with_faults(p, plan).run(prog);
        for (rank, (c, f)) in clean.results.iter().zip(&faulty.results).enumerate() {
            prop_assert_eq!(c, f, "rank {} diverged under faults", rank);
        }
        for (sc, sf) in clean.stats.iter().zip(&faulty.stats) {
            prop_assert_eq!(sc.bytes(K), sf.bytes(K), "payload bytes perturbed");
            prop_assert_eq!(sc.messages(K), sf.messages(K), "payload messages perturbed");
        }
    }

    /// Within every row group of a `P/R_A × R_A` grid, the sparsity-aware
    /// chunk-pipelined all-to-all is bitwise the plain dense group
    /// all-to-all — for any chunk count (ragged tails, empty chunks), any
    /// zero-row pattern, and any chaos schedule — and its wire bytes
    /// never exceed the dense volume while the dense-equivalent book
    /// matches it exactly.
    #[test]
    fn group_chunked_sparse_equals_dense_group_all_to_all(
        panels in 1usize..4,
        r_a in 1usize..4,
        rows in 1usize..10,
        cols in 1usize..8,
        chunks in 1usize..12,
        drop in 0.0f64..0.3,
        seed in 0u64..64,
    ) {
        let p = panels * r_a;
        let make = move |me: usize| -> Vec<Mat> {
            (0..r_a)
                .map(|j| {
                    // Zero some pieces outright so the indexed-strip
                    // packing actually engages.
                    if (me + j + seed as usize).is_multiple_of(3) {
                        Mat::zeros(rows, cols)
                    } else {
                        Mat::random(rows, cols, 1.0, seed ^ ((me * 31 + j) as u64))
                    }
                })
                .collect()
        };
        let row_group = move |me: usize| -> Vec<usize> {
            let base = (me / r_a) * r_a;
            (base..base + r_a).collect()
        };
        let dense = Cluster::new(p).run(move |ctx| {
            let me = ctx.rank();
            ctx.group_all_to_all(&row_group(me), make(me), K)
        });
        let plan = FaultPlan::new(chaos_base() ^ seed ^ 0x9A7)
            .drop_rate(drop)
            .delay(0.2, 3);
        let sparse = Cluster::with_faults(p, plan).run(move |ctx| {
            let me = ctx.rank();
            let group = row_group(me);
            let mut pipe =
                ctx.group_all_to_all_chunked_sparse(&group, make(me), ChunkAxis::Cols, chunks, K);
            let mut per_sender: Vec<Vec<Mat>> = (0..r_a).map(|_| Vec::new()).collect();
            while let Some(pieces) = pipe.recv_chunk() {
                for (sender, piece) in pieces.into_iter().enumerate() {
                    per_sender[sender].push(piece);
                }
            }
            per_sender
                .into_iter()
                .map(|c| rdm_dense::hstack(&c))
                .collect::<Vec<Mat>>()
        });
        for (rank, (d, s)) in dense.results.iter().zip(&sparse.results).enumerate() {
            prop_assert_eq!(d, s, "rank {} diverged from the dense group all-to-all", rank);
        }
        for (sd, ss) in dense.stats.iter().zip(&sparse.stats) {
            prop_assert!(
                ss.bytes(K) <= sd.bytes(K),
                "sparse wire bytes {} above dense {}",
                ss.bytes(K),
                sd.bytes(K)
            );
            prop_assert_eq!(ss.dense_bytes(K), sd.bytes(K), "dense-equivalent book diverged");
        }
    }

    /// Reduce-scatter sums exactly what each rank addressed to the
    /// receiver.
    #[test]
    fn reduce_scatter_sums(p in 1usize..6, seed in 0u64..500) {
        let out = Cluster::new(p).run(move |ctx| {
            let parts: Vec<Mat> = (0..p)
                .map(|j| Mat::random(2, 2, 1.0, seed ^ ((ctx.rank() * 17 + j) as u64)))
                .collect();
            ctx.reduce_scatter_sum(parts, K)
        });
        for (j, got) in out.results.iter().enumerate() {
            let mut expect = Mat::zeros(2, 2);
            for i in 0..p {
                rdm_dense::add_assign(
                    &mut expect,
                    &Mat::random(2, 2, 1.0, seed ^ ((i * 17 + j) as u64)),
                );
            }
            prop_assert!(allclose(got, &expect, 1e-5));
        }
    }
}
