//! Sparse × dense matrix multiplication.
//!
//! Like the dense GEMM kernels, SpMM has two per-thread implementations
//! selected via [`rdm_dense::kernels`]: the scalar reference (row-major
//! axpy per nonzero — the bitwise-pinned path) and a register-blocked
//! fast path that walks each row in `SB`-by-`W`-wide column strips,
//! holding the strips' accumulators in registers across all of the row's
//! nonzeros (the `SB` blocks per pass amortize each nonzero's column
//! decode over `SB` vector FMAs). That reordering cuts the `C` traffic
//! per nonzero from a full-row read+write to one register update — the
//! dominant win on this memory-bound kernel — while keeping the
//! per-element accumulation order (nonzeros ascending) identical to the
//! scalar sweep. Like the GEMM bodies, each fast row kernel is compiled
//! twice (baseline and `#[target_feature(enable = "avx2")]`, chosen at
//! runtime) from one inlined body, so the host changes speed, never
//! bits. Both paths run under the same cached nnz-balanced panel
//! partition, so load balance and rank-count determinism are unchanged.

use crate::csr::Csr;
use rdm_dense::kernels::{self, Mode, Width};
use rdm_dense::Mat;

/// `C = A · B` for CSR `A` (m×k) and dense `B` (k×n), allocating `C` (m×n).
///
/// Parallelized over row panels of `C`; each output row accumulates scaled
/// rows of `B`, a contiguous axpy that vectorizes well. This is the
/// aggregation kernel of a GCN layer.
pub fn spmm(a: &Csr, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.rows(), b.cols());
    spmm_acc(a, b, &mut c);
    c
}

/// `C += A · B` into an existing output.
///
/// # Panics
/// On shape mismatch.
pub fn spmm_acc(a: &Csr, b: &Mat, c: &mut Mat) {
    let n = b.cols();
    assert_eq!(
        a.cols(),
        b.rows(),
        "spmm: A is {}x{} but B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        n
    );
    assert_eq!(c.shape(), (a.rows(), n), "spmm: C shape mismatch");
    if a.rows() == 0 || n == 0 || a.nnz() == 0 {
        return;
    }
    let b_data = b.as_slice();
    let indptr = a.indptr();
    let indices = a.indices();
    let vals = a.vals();
    // One task per nnz-balanced row panel: boundaries are precomputed from
    // `indptr` (and cached on `A`, which is reused every epoch) so each task
    // owns ~equal nonzeros and skewed (power-law) rows still balance. Panels
    // are whole rows, so per-row accumulation order — and hence every output
    // bit — is identical to a sequential sweep.
    let bounds = a.nnz_partition(task_count(a.rows()));
    // Kernel mode is read on the calling thread and captured by value;
    // pool workers never consult their own thread-local.
    let mode = kernels::mode();
    let avx = kernels::avx2_available();
    rayon::par_partition_mut(c.as_mut_slice(), bounds, n, |t, c_chunk| {
        for (rr, r) in (bounds[t]..bounds[t + 1]).enumerate() {
            let c_row = &mut c_chunk[rr * n..(rr + 1) * n];
            let row_idx = indptr[r]..indptr[r + 1];
            match mode {
                Mode::Scalar | Mode::Fast(Width::W1) => {
                    for idx in row_idx {
                        let k = indices[idx] as usize;
                        let v = vals[idx];
                        let b_row = &b_data[k * n..(k + 1) * n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv += v * bv;
                        }
                    }
                }
                Mode::Fast(Width::W4) => fast_row::<4>(
                    avx,
                    n,
                    &indices[row_idx.clone()],
                    &vals[row_idx],
                    b_data,
                    c_row,
                ),
                Mode::Fast(Width::W8) => fast_row::<8>(
                    avx,
                    n,
                    &indices[row_idx.clone()],
                    &vals[row_idx],
                    b_data,
                    c_row,
                ),
            }
        }
    });
}

/// Row-skipping SpMM: like [`spmm`] but output rows flagged in `skip` are
/// left at zero and their nonzeros do no work — the frozen-weight serving
/// cache's kernel, where skipped rows are filled from cached aggregations
/// instead of recomputed. Unskipped rows run the exact per-row kernels of
/// [`spmm_acc`] (same mode dispatch, same accumulation order), so every
/// computed row is bitwise identical to the full kernel's.
///
/// # Panics
/// If `skip.len() != a.rows()` or shapes mismatch.
pub fn spmm_skip(a: &Csr, b: &Mat, skip: &[bool]) -> Mat {
    assert_eq!(skip.len(), a.rows(), "skip length must equal A's rows");
    let n = b.cols();
    assert_eq!(
        a.cols(),
        b.rows(),
        "spmm_skip: A is {}x{} but B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        n
    );
    let mut c = Mat::zeros(a.rows(), n);
    if a.rows() == 0 || n == 0 || a.nnz() == 0 {
        return c;
    }
    let b_data = b.as_slice();
    let indptr = a.indptr();
    let indices = a.indices();
    let vals = a.vals();
    // Same nnz-balanced panels as the full kernel (skips only thin work;
    // the cached partition is still the right upper bound).
    let bounds = a.nnz_partition(task_count(a.rows()));
    let mode = kernels::mode();
    let avx = kernels::avx2_available();
    rayon::par_partition_mut(c.as_mut_slice(), bounds, n, |t, c_chunk| {
        for (rr, r) in (bounds[t]..bounds[t + 1]).enumerate() {
            if skip[r] {
                continue;
            }
            let c_row = &mut c_chunk[rr * n..(rr + 1) * n];
            let row_idx = indptr[r]..indptr[r + 1];
            match mode {
                Mode::Scalar | Mode::Fast(Width::W1) => {
                    for idx in row_idx {
                        let k = indices[idx] as usize;
                        let v = vals[idx];
                        let b_row = &b_data[k * n..(k + 1) * n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv += v * bv;
                        }
                    }
                }
                Mode::Fast(Width::W4) => fast_row::<4>(
                    avx,
                    n,
                    &indices[row_idx.clone()],
                    &vals[row_idx],
                    b_data,
                    c_row,
                ),
                Mode::Fast(Width::W8) => fast_row::<8>(
                    avx,
                    n,
                    &indices[row_idx.clone()],
                    &vals[row_idx],
                    b_data,
                    c_row,
                ),
            }
        }
    });
    c
}

/// `W`-wide strips processed together per pass over a row's nonzeros:
/// amortizes each nonzero's column decode over `SB` register blocks.
const SB: usize = 4;

/// One output row of `C += A·B`, register-blocked: walk the row in
/// `SB·W`-wide column strips (strips outer, nonzeros inner), keeping the
/// strips' accumulators in registers across all nonzeros. Per output
/// element the accumulation order is nonzeros ascending — the scalar
/// sweep's order — so only strip traversal, not arithmetic order, differs.
#[inline]
fn fast_row<const W: usize>(
    avx: bool,
    n: usize,
    cols: &[u32],
    vals: &[f32],
    b: &[f32],
    c_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if avx {
        // SAFETY: `avx` witnesses runtime AVX2 support.
        return unsafe { fast_row_avx2::<W>(n, cols, vals, b, c_row) };
    }
    let _ = avx;
    fast_row_body::<W>(n, cols, vals, b, c_row)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn fast_row_avx2<const W: usize>(
    n: usize,
    cols: &[u32],
    vals: &[f32],
    b: &[f32],
    c_row: &mut [f32],
) {
    fast_row_body::<W>(n, cols, vals, b, c_row)
}

#[inline(always)]
fn fast_row_body<const W: usize>(
    n: usize,
    cols: &[u32],
    vals: &[f32],
    b: &[f32],
    c_row: &mut [f32],
) {
    let mut j = 0;
    while j + SB * W <= n {
        let mut acc = [[0.0f32; W]; SB];
        for (s, acc_s) in acc.iter_mut().enumerate() {
            acc_s.copy_from_slice(&c_row[j + s * W..j + (s + 1) * W]);
        }
        for (&k, &v) in cols.iter().zip(vals) {
            let base = k as usize * n + j;
            let b_blk = &b[base..base + SB * W];
            for (s, acc_s) in acc.iter_mut().enumerate() {
                for l in 0..W {
                    acc_s[l] += v * b_blk[s * W + l];
                }
            }
        }
        for (s, acc_s) in acc.iter().enumerate() {
            c_row[j + s * W..j + (s + 1) * W].copy_from_slice(acc_s);
        }
        j += SB * W;
    }
    while j + W <= n {
        let mut acc = [0.0f32; W];
        let c_blk = &mut c_row[j..j + W];
        acc.copy_from_slice(c_blk);
        for (&k, &v) in cols.iter().zip(vals) {
            let base = k as usize * n + j;
            let b_blk = &b[base..base + W];
            for l in 0..W {
                acc[l] += v * b_blk[l];
            }
        }
        c_blk.copy_from_slice(&acc);
        j += W;
    }
    // Lane tail (`n % W` columns): width-1 strips, same nnz order.
    while j < n {
        let mut acc = c_row[j];
        for (&k, &v) in cols.iter().zip(vals) {
            acc += v * b[k as usize * n + j];
        }
        c_row[j] = acc;
        j += 1;
    }
}

/// Masked twin of [`fast_row`]: `mask` is indexed in step with
/// `cols`/`vals` and thins nonzeros without changing their order.
#[inline]
fn fast_row_masked<const W: usize>(
    avx: bool,
    n: usize,
    cols: &[u32],
    vals: &[f32],
    mask: &[bool],
    b: &[f32],
    c_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if avx {
        // SAFETY: `avx` witnesses runtime AVX2 support.
        return unsafe { fast_row_masked_avx2::<W>(n, cols, vals, mask, b, c_row) };
    }
    let _ = avx;
    fast_row_masked_body::<W>(n, cols, vals, mask, b, c_row)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn fast_row_masked_avx2<const W: usize>(
    n: usize,
    cols: &[u32],
    vals: &[f32],
    mask: &[bool],
    b: &[f32],
    c_row: &mut [f32],
) {
    fast_row_masked_body::<W>(n, cols, vals, mask, b, c_row)
}

#[inline(always)]
fn fast_row_masked_body<const W: usize>(
    n: usize,
    cols: &[u32],
    vals: &[f32],
    mask: &[bool],
    b: &[f32],
    c_row: &mut [f32],
) {
    let mut j = 0;
    while j + SB * W <= n {
        let mut acc = [[0.0f32; W]; SB];
        for (s, acc_s) in acc.iter_mut().enumerate() {
            acc_s.copy_from_slice(&c_row[j + s * W..j + (s + 1) * W]);
        }
        for ((&k, &v), &keep) in cols.iter().zip(vals).zip(mask) {
            if !keep {
                continue;
            }
            let base = k as usize * n + j;
            let b_blk = &b[base..base + SB * W];
            for (s, acc_s) in acc.iter_mut().enumerate() {
                for l in 0..W {
                    acc_s[l] += v * b_blk[s * W + l];
                }
            }
        }
        for (s, acc_s) in acc.iter().enumerate() {
            c_row[j + s * W..j + (s + 1) * W].copy_from_slice(acc_s);
        }
        j += SB * W;
    }
    while j + W <= n {
        let mut acc = [0.0f32; W];
        let c_blk = &mut c_row[j..j + W];
        acc.copy_from_slice(c_blk);
        for ((&k, &v), &keep) in cols.iter().zip(vals).zip(mask) {
            if !keep {
                continue;
            }
            let base = k as usize * n + j;
            let b_blk = &b[base..base + W];
            for l in 0..W {
                acc[l] += v * b_blk[l];
            }
        }
        c_blk.copy_from_slice(&acc);
        j += W;
    }
    while j < n {
        let mut acc = c_row[j];
        for ((&k, &v), &keep) in cols.iter().zip(vals).zip(mask) {
            if keep {
                acc += v * b[k as usize * n + j];
            }
        }
        c_row[j] = acc;
        j += 1;
    }
}

/// How many nnz-balanced panels to cut a `rows`-row matrix into: enough to
/// keep every worker fed with slack for imbalance, never more than rows.
fn task_count(rows: usize) -> usize {
    (rayon::current_num_threads() * 8).clamp(1, rows.max(1))
}

/// Masked SpMM (§III-F): like [`spmm`] but only the entries of `A` whose
/// flag in `mask` is true participate. `mask` is indexed by nonzero
/// position (same order as `A`'s value array) — the "sampled neighbor"
/// pattern of sampling-based GNNs that do not build explicit subgraphs.
///
/// # Panics
/// If `mask.len() != a.nnz()` or shapes mismatch.
pub fn spmm_masked(a: &Csr, b: &Mat, mask: &[bool]) -> Mat {
    assert_eq!(mask.len(), a.nnz(), "mask length must equal nnz");
    assert_eq!(a.cols(), b.rows(), "spmm_masked shape mismatch");
    let n = b.cols();
    let mut c = Mat::zeros(a.rows(), n);
    if a.rows() == 0 || n == 0 || a.nnz() == 0 {
        return c;
    }
    let b_data = b.as_slice();
    let indptr = a.indptr();
    let indices = a.indices();
    let vals = a.vals();
    // Same nnz-balanced panels as the unmasked kernel (the mask only thins
    // work within a row; the partition is still the right upper bound).
    let bounds = a.nnz_partition(task_count(a.rows()));
    let mode = kernels::mode();
    let avx = kernels::avx2_available();
    rayon::par_partition_mut(c.as_mut_slice(), bounds, n, |t, c_chunk| {
        for (rr, r) in (bounds[t]..bounds[t + 1]).enumerate() {
            let c_row = &mut c_chunk[rr * n..(rr + 1) * n];
            let row_idx = indptr[r]..indptr[r + 1];
            match mode {
                Mode::Scalar | Mode::Fast(Width::W1) => {
                    for idx in row_idx {
                        if !mask[idx] {
                            continue;
                        }
                        let k = indices[idx] as usize;
                        let v = vals[idx];
                        let b_row = &b_data[k * n..(k + 1) * n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv += v * bv;
                        }
                    }
                }
                Mode::Fast(Width::W4) => fast_row_masked::<4>(
                    avx,
                    n,
                    &indices[row_idx.clone()],
                    &vals[row_idx.clone()],
                    &mask[row_idx],
                    b_data,
                    c_row,
                ),
                Mode::Fast(Width::W8) => fast_row_masked::<8>(
                    avx,
                    n,
                    &indices[row_idx.clone()],
                    &vals[row_idx.clone()],
                    &mask[row_idx],
                    b_data,
                    c_row,
                ),
            }
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Coo;
    use rdm_dense::{allclose, gemm};

    fn random_csr(rows: usize, cols: usize, density: f64, seed: u64) -> Csr {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    coo.push(r as u32, c as u32, rng.gen_range(-1.0..1.0));
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        for (m, k, n, d) in [(10, 10, 4, 0.3), (37, 53, 9, 0.1), (64, 64, 16, 0.05)] {
            let a = random_csr(m, k, d, (m + n) as u64);
            let b = Mat::random(k, n, 1.0, 99);
            let c = spmm(&a, &b);
            let c_ref = gemm(&a.to_dense(), &b);
            assert!(allclose(&c, &c_ref, 1e-4));
        }
    }

    #[test]
    fn spmm_identity_is_noop() {
        let b = Mat::random(20, 5, 1.0, 3);
        let c = spmm(&Csr::identity(20), &b);
        assert!(allclose(&c, &b, 1e-6));
    }

    #[test]
    fn spmm_empty_matrix_gives_zeros() {
        let a = Csr::empty(4, 6);
        let b = Mat::random(6, 3, 1.0, 5);
        let c = spmm(&a, &b);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn spmm_acc_accumulates() {
        let a = random_csr(8, 8, 0.4, 1);
        let b = Mat::random(8, 4, 1.0, 2);
        let mut c = spmm(&a, &b);
        spmm_acc(&a, &b, &mut c);
        let mut twice = spmm(&a, &b);
        rdm_dense::scale(&mut twice, 2.0);
        assert!(allclose(&c, &twice, 1e-4));
    }

    #[test]
    #[should_panic]
    fn spmm_shape_mismatch_panics() {
        let a = Csr::empty(4, 6);
        let b = Mat::zeros(5, 3);
        let _ = spmm(&a, &b);
    }

    #[test]
    fn zero_dimension_inputs_are_handled() {
        // m == 0, n == 0, k == 0 and nnz == 0 for both kernels.
        let b = Mat::random(6, 3, 1.0, 5);
        assert_eq!(spmm(&Csr::empty(0, 6), &b).shape(), (0, 3));
        assert_eq!(spmm(&Csr::empty(4, 6), &Mat::zeros(6, 0)).shape(), (4, 0));
        assert_eq!(spmm(&Csr::empty(0, 0), &Mat::zeros(0, 2)).shape(), (0, 2));
        let masked = spmm_masked(&Csr::empty(4, 6), &b, &[]);
        assert_eq!(masked.shape(), (4, 3));
        assert!(masked.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(spmm_masked(&Csr::empty(0, 6), &b, &[]).shape(), (0, 3));
        assert_eq!(
            spmm_masked(&Csr::empty(4, 6), &Mat::zeros(6, 0), &[]).shape(),
            (4, 0)
        );
    }

    #[test]
    fn fast_widths_handle_zero_dims_and_narrow_outputs() {
        // Regression for the lane-tail edge cases: n < W must fall through
        // to the width-1 strip loop, and the zero-dim early-outs must fire
        // before any fast dispatch.
        use rdm_dense::kernels::{with_mode, Mode, Width};
        for width in Width::all() {
            with_mode(Mode::Fast(width), || {
                let b = Mat::random(6, 3, 1.0, 5);
                assert_eq!(spmm(&Csr::empty(0, 6), &b).shape(), (0, 3));
                assert_eq!(spmm(&Csr::empty(4, 6), &Mat::zeros(6, 0)).shape(), (4, 0));
                assert_eq!(spmm_masked(&Csr::empty(4, 6), &b, &[]).shape(), (4, 3));
                for n in [1usize, 2, 3, 5, 7] {
                    let a = random_csr(12, 12, 0.4, n as u64);
                    let bn = Mat::random(12, n, 1.0, (n + 40) as u64);
                    let c_ref = gemm(&a.to_dense(), &bn);
                    assert!(allclose(&spmm(&a, &bn), &c_ref, 1e-4), "n={n}");
                    let mask = vec![true; a.nnz()];
                    assert!(allclose(&spmm_masked(&a, &bn, &mask), &c_ref, 1e-4));
                }
            });
        }
    }

    #[test]
    fn skewed_rows_partition_to_bounded_tasks() {
        // Regression for the old uniform-row chunking: on a power-law-like
        // matrix the partition actually used by spmm must keep the max/mean
        // per-task nnz ratio bounded.
        let mut coo = Coo::new(400, 400);
        for c in 0..399u32 {
            coo.push(0, c, 0.5); // one hub row with ~all the mass
        }
        for r in 1..400u32 {
            coo.push(r, r - 1, 1.0);
        }
        let a = coo.to_csr();
        let b = Mat::random(400, 4, 1.0, 17);
        let c = spmm(&a, &b); // forces the cached partition into existence
        assert_eq!(c.shape(), (400, 4));
        let bounds = a.nnz_partition(0); // hint ignored: already cached
        let tasks = bounds.len() - 1;
        assert!(tasks >= 2, "expected a multi-task partition");
        let per_task: Vec<usize> = bounds
            .windows(2)
            .map(|w| a.indptr()[w[1]] - a.indptr()[w[0]])
            .collect();
        let max = *per_task.iter().max().unwrap() as f64;
        let mean = a.nnz() as f64 / tasks as f64;
        // The hub row is indivisible, so one task necessarily owns it; the
        // bound below fails for uniform row chunking (ratio ~tasks/2) and
        // holds for the nnz-balanced partition.
        assert!(
            max / mean <= (399.0 / mean).max(1.5),
            "per-task nnz skew unbounded: max {max}, mean {mean}"
        );
    }

    #[test]
    fn skip_rows_are_zero_and_kept_rows_are_bitwise_equal() {
        use rand::{Rng, SeedableRng};
        use rdm_dense::kernels::{with_mode, Mode, Width};
        let a = random_csr(24, 24, 0.3, 13);
        let b = Mat::random(24, 7, 1.0, 14);
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let skip: Vec<bool> = (0..24).map(|_| rng.gen_bool(0.4)).collect();
        for width in Width::all() {
            with_mode(Mode::Fast(width), || {
                let full = spmm(&a, &b);
                let thin = spmm_skip(&a, &b, &skip);
                for (r, &skipped) in skip.iter().enumerate() {
                    for j in 0..7 {
                        if skipped {
                            assert_eq!(thin.get(r, j), 0.0, "row {r} not zeroed");
                        } else {
                            assert_eq!(
                                thin.get(r, j).to_bits(),
                                full.get(r, j).to_bits(),
                                "row {r} col {j} diverged at width {width:?}"
                            );
                        }
                    }
                }
            });
        }
    }

    #[test]
    fn skip_none_is_bitwise_spmm_and_degenerate_shapes_hold() {
        let a = random_csr(16, 16, 0.3, 7);
        let b = Mat::random(16, 6, 1.0, 8);
        let full = spmm(&a, &b);
        let thin = spmm_skip(&a, &b, &[false; 16]);
        assert_eq!(full.as_slice(), thin.as_slice());
        let all = spmm_skip(&a, &b, &[true; 16]);
        assert!(all.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(
            spmm_skip(&Csr::empty(0, 6), &Mat::zeros(6, 3), &[]).shape(),
            (0, 3)
        );
        assert_eq!(
            spmm_skip(&Csr::empty(4, 6), &Mat::zeros(6, 0), &[false; 4]).shape(),
            (4, 0)
        );
    }

    #[test]
    #[should_panic]
    fn skip_length_mismatch_panics() {
        let a = Csr::empty(4, 6);
        let b = Mat::zeros(6, 3);
        let _ = spmm_skip(&a, &b, &[false; 3]);
    }

    #[test]
    fn masked_all_true_equals_unmasked() {
        let a = random_csr(16, 16, 0.3, 7);
        let b = Mat::random(16, 6, 1.0, 8);
        let mask = vec![true; a.nnz()];
        assert!(allclose(&spmm_masked(&a, &b, &mask), &spmm(&a, &b), 1e-6));
    }

    #[test]
    fn masked_all_false_gives_zero() {
        let a = random_csr(16, 16, 0.3, 7);
        let b = Mat::random(16, 6, 1.0, 8);
        let mask = vec![false; a.nnz()];
        let c = spmm_masked(&a, &b, &mask);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn masked_subset_matches_filtered_matrix() {
        use rand::{Rng, SeedableRng};
        let a = random_csr(20, 20, 0.3, 9);
        let b = Mat::random(20, 4, 1.0, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mask: Vec<bool> = (0..a.nnz()).map(|_| rng.gen_bool(0.5)).collect();
        // Build the explicitly filtered matrix.
        let mut coo = Coo::new(20, 20);
        let mut pos = 0;
        for r in 0..20 {
            let (cs, vs) = a.row(r);
            for (&c, &v) in cs.iter().zip(vs) {
                if mask[pos] {
                    coo.push(r as u32, c, v);
                }
                pos += 1;
            }
        }
        let filtered = coo.to_csr();
        assert!(allclose(
            &spmm_masked(&a, &b, &mask),
            &spmm(&filtered, &b),
            1e-5
        ));
    }
}
