//! SpMM/GEMM ordering configurations and the paper's ID encoding.

/// Which operation runs first inside one layer of one pass (§III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Order {
    /// SpMM first (`S` in Table IV): aggregate, then apply the weight.
    SpmmFirst,
    /// GEMM first (`D`): apply the weight, then aggregate.
    GemmFirst,
}

impl Order {
    /// Paper notation: `S` or `D`.
    pub fn letter(self) -> char {
        match self {
            Order::SpmmFirst => 'S',
            Order::GemmFirst => 'D',
        }
    }

    fn bit(self) -> usize {
        match self {
            Order::SpmmFirst => 0,
            Order::GemmFirst => 1,
        }
    }

    fn from_bit(b: usize) -> Self {
        if b == 0 {
            Order::SpmmFirst
        } else {
            Order::GemmFirst
        }
    }
}

/// A full ordering for an `L`-layer GCN: one [`Order`] per layer for the
/// forward pass (index 0 = layer 1) and one per layer for the backward pass
/// (index 0 = layer 1; the backward pass *executes* layers in descending
/// order).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct OrderConfig {
    pub forward: Vec<Order>,
    pub backward: Vec<Order>,
}

impl OrderConfig {
    /// Number of layers.
    pub fn layers(&self) -> usize {
        debug_assert_eq!(self.forward.len(), self.backward.len());
        self.forward.len()
    }

    /// The all-SpMM-first configuration (CAGNET's fixed order).
    pub fn all_spmm_first(layers: usize) -> Self {
        OrderConfig {
            forward: vec![Order::SpmmFirst; layers],
            backward: vec![Order::SpmmFirst; layers],
        }
    }

    /// The paper's configuration ID.
    ///
    /// For 2 layers this matches Table IV exactly:
    /// `ID = 8·B2 + 4·B1 + 2·F1 + F2` with `S = 0`, `D = 1` (verified
    /// against every formula row and against the text's statement that
    /// ID 10 is the dense–sparse–dense–sparse path). The generalization
    /// packs bits MSB→LSB as `[B_L … B_1, F_1 … F_L]`.
    pub fn id(&self) -> usize {
        let l = self.layers();
        let mut id = 0;
        for i in 0..l {
            // B_L is the most significant bit.
            id = (id << 1) | self.backward[l - 1 - i].bit();
        }
        for i in 0..l {
            id = (id << 1) | self.forward[i].bit();
        }
        id
    }

    /// Inverse of [`OrderConfig::id`].
    ///
    /// # Panics
    /// If `id >= 4^layers`.
    pub fn from_id(id: usize, layers: usize) -> Self {
        assert!(
            id < 1 << (2 * layers),
            "id {id} out of range for {layers} layers"
        );
        let mut forward = Vec::with_capacity(layers);
        let mut backward = vec![Order::SpmmFirst; layers];
        for i in 0..layers {
            let shift = layers - 1 - i;
            forward.push(Order::from_bit((id >> shift) & 1));
        }
        for (i, b) in backward.iter_mut().enumerate() {
            // B_1 sits just above the forward bits; B_L is the MSB.
            let shift = layers + i;
            *b = Order::from_bit((id >> shift) & 1);
        }
        OrderConfig { forward, backward }
    }

    /// Every configuration for `layers` layers, ordered by ID
    /// (`4^layers` of them; the paper's `O(L·2^L)`-per-entry table).
    pub fn enumerate(layers: usize) -> Vec<OrderConfig> {
        (0..1usize << (2 * layers))
            .map(|id| OrderConfig::from_id(id, layers))
            .collect()
    }

    /// Whether the forward SpMM output of layer `l` (1-based) must be
    /// memoized for the backward pass: true when the forward pass computes
    /// `AᵀH^{l-1}` (SpMM-first) and the backward pass is GEMM-first, which
    /// otherwise would need an extra SpMM for the weight gradient (§III-C).
    pub fn memoize_forward_spmm(&self, layer: usize) -> bool {
        self.forward[layer - 1] == Order::SpmmFirst && self.backward[layer - 1] == Order::GemmFirst
    }

    /// Paper-style rendering, e.g. `F:DS B:DS` for ID 10.
    pub fn display(&self) -> String {
        let f: String = self.forward.iter().map(|o| o.letter()).collect();
        let b: String = self.backward.iter().rev().map(|o| o.letter()).collect();
        format!("F:{f} B:{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Order::*;

    #[test]
    fn id_roundtrip_2_layers() {
        for id in 0..16 {
            assert_eq!(OrderConfig::from_id(id, 2).id(), id);
        }
    }

    #[test]
    fn id_roundtrip_3_layers() {
        for id in 0..64 {
            assert_eq!(OrderConfig::from_id(id, 3).id(), id);
        }
    }

    #[test]
    fn id10_is_dense_sparse_dense_sparse() {
        // §III-C: "The red arrows show the dense-sparse-dense-sparse
        // ordering (corresponds to ID 10 in Table IV)" — i.e. forward
        // (D, S), backward executed as (D, S) = B2 dense-first, B1
        // sparse-first.
        let c = OrderConfig::from_id(10, 2);
        assert_eq!(c.forward, vec![GemmFirst, SpmmFirst]);
        assert_eq!(c.backward, vec![SpmmFirst, GemmFirst]); // [B1, B2]
        assert_eq!(c.display(), "F:DS B:DS");
    }

    #[test]
    fn id0_is_all_spmm_first() {
        let c = OrderConfig::from_id(0, 2);
        assert_eq!(c, OrderConfig::all_spmm_first(2));
    }

    #[test]
    fn enumerate_is_exhaustive_and_unique() {
        let all = OrderConfig::enumerate(2);
        assert_eq!(all.len(), 16);
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.id(), i);
        }
        let all3 = OrderConfig::enumerate(3);
        assert_eq!(all3.len(), 64);
    }

    #[test]
    fn memoization_rule() {
        // Memoize exactly when forward is S and backward is D for a layer.
        let c = OrderConfig {
            forward: vec![SpmmFirst, GemmFirst],
            backward: vec![GemmFirst, GemmFirst],
        };
        assert!(c.memoize_forward_spmm(1));
        assert!(!c.memoize_forward_spmm(2)); // forward was D: nothing to save
        let c2 = OrderConfig::all_spmm_first(2);
        assert!(!c2.memoize_forward_spmm(1)); // backward S reuses A·G instead
    }

    #[test]
    fn id_bit_layout_2_layers() {
        // ID = 8·B2 + 4·B1 + 2·F1 + F2
        for id in 0..16usize {
            let c = OrderConfig::from_id(id, 2);
            let b2 = c.backward[1].bit();
            let b1 = c.backward[0].bit();
            let f1 = c.forward[0].bit();
            let f2 = c.forward[1].bit();
            assert_eq!(id, 8 * b2 + 4 * b1 + 2 * f1 + f2);
        }
    }
}
