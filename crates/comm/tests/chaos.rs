//! Chaos suite: every collective must complete *bit-identically* on a
//! faulty fabric.
//!
//! The retrying envelope protocol (`rdm_comm::mailbox`) claims that drops,
//! reordering delays and stragglers are invisible to the application: the
//! SPMD program computes the same bytes, the payload accounting matches the
//! paper's formulas exactly, and only the `retries` / `retransmit_bytes`
//! counters reveal that the wire misbehaved. These tests check that claim
//! across cluster sizes, fault seeds and drop rates.
//!
//! The `CHAOS_SEED` environment variable offsets every fault seed, letting
//! CI sweep distinct fault universes run-to-run without touching the code
//! (the `chaos` job pins three values so failures stay reproducible).

use proptest::prelude::*;
use rdm_comm::{Cluster, CollectiveKind, CommStats, FaultPlan};
use rdm_dense::Mat;

const K: CollectiveKind = CollectiveKind::Other;

/// Fault-seed offset from the environment (CI sweeps this), 0 by default.
fn chaos_base() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The cluster sizes the acceptance criteria call out.
fn p_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2usize), Just(3usize), Just(4usize), Just(7usize)]
}

/// The drop rates the acceptance criteria call out.
fn drop_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0f64), Just(0.05f64), Just(0.2f64)]
}

/// One SPMD round trip through all four collectives, returning everything
/// each rank observed. Deterministic in (p, rank) so any cross-run
/// difference is the fabric's fault.
fn all_collectives(p: usize) -> impl Fn(&rdm_comm::RankCtx) -> Vec<Mat> + Sync {
    move |ctx| {
        let me = ctx.rank();
        let mut seen = Vec::new();
        // Broadcast from every root in turn.
        for root in 0..p {
            let payload =
                (me == root).then(|| Mat::from_fn(2, 3, |i, j| (root * 100 + i * 3 + j) as f32));
            seen.push(ctx.broadcast(root, payload, K));
        }
        // All-gather of a rank-stamped part.
        let part = Mat::from_fn(1, 4, |_, j| (me * 10 + j) as f32);
        seen.extend(ctx.all_gather(part, K));
        // Personalized all-to-all.
        let parts = (0..p)
            .map(|j| Mat::from_fn(1, 2, |_, c| (me * 1000 + j * 10 + c) as f32))
            .collect();
        seen.extend(ctx.all_to_all(parts, K));
        // Both all-reduce algorithms.
        let m = Mat::from_fn(3, 3, |i, j| (me + i * 3 + j) as f32);
        seen.push(ctx.all_reduce_sum(m.clone(), K));
        seen.push(ctx.all_reduce_ring(m, K));
        seen
    }
}

fn total_retransmit_bytes(stats: &[CommStats]) -> u64 {
    stats.iter().map(|s| s.retransmit_bytes).sum()
}

fn total_retries(stats: &[CommStats]) -> u64 {
    stats.iter().map(|s| s.retries).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any cluster size, fault seed and drop rate: the faulty run's
    /// results are bit-identical to the fault-free run's, payload byte
    /// accounting matches exactly, and retransmit bytes appear exactly when
    /// attempts are dropped.
    #[test]
    fn collectives_bit_identical_under_faults(
        p in p_strategy(),
        drop in drop_strategy(),
        seed in 0u64..32,
    ) {
        let plan = FaultPlan::new(chaos_base() ^ seed)
            .drop_rate(drop)
            .delay(0.2, 3)
            .straggler(0.02, 20_000);
        let clean = Cluster::new(p).run(all_collectives(p));
        let faulty = Cluster::with_faults(p, plan).run(all_collectives(p));
        for (r, (c, f)) in clean.results.iter().zip(&faulty.results).enumerate() {
            prop_assert_eq!(c, f, "rank {} diverged under faults", r);
        }
        for r in 0..p {
            prop_assert_eq!(
                clean.stats[r].total_bytes(),
                faulty.stats[r].total_bytes(),
                "rank {} payload accounting perturbed by faults", r
            );
            prop_assert_eq!(
                clean.stats[r].total_messages(),
                faulty.stats[r].total_messages(),
                "rank {} message accounting perturbed by faults", r
            );
            prop_assert_eq!(clean.stats[r].retries, 0u64);
            prop_assert_eq!(clean.stats[r].retransmit_bytes, 0u64);
        }
        if drop == 0.0 {
            prop_assert_eq!(total_retransmit_bytes(&faulty.stats), 0);
            prop_assert_eq!(total_retries(&faulty.stats), 0);
        }
    }

    /// The same fault seed yields the same retry counts on every run —
    /// chaos results are reproducible from the seed alone.
    #[test]
    fn retry_counts_reproducible_from_seed(
        p in p_strategy(),
        seed in 0u64..32,
    ) {
        let plan = FaultPlan::new(chaos_base() ^ seed)
            .drop_rate(0.2)
            .delay(0.3, 4);
        let run = || {
            let out = Cluster::with_faults(p, plan).run(all_collectives(p));
            (
                out.stats.iter().map(|s| s.retries).collect::<Vec<_>>(),
                out.stats.iter().map(|s| s.retransmit_bytes).collect::<Vec<_>>(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Per-link FIFO ordering survives arbitrary drop/delay combinations:
    /// indexed messages between every rank pair arrive strictly in send
    /// order.
    #[test]
    fn fifo_order_survives_chaos(
        p in p_strategy(),
        seed in 0u64..32,
        drop in drop_strategy(),
    ) {
        let plan = FaultPlan::new(chaos_base() ^ seed ^ 0xF1F0)
            .drop_rate(drop)
            .delay(0.5, 4);
        let rounds = 12;
        Cluster::with_faults(p, plan).run(|ctx| {
            let me = ctx.rank();
            for round in 0..rounds {
                for dst in 0..p {
                    if dst != me {
                        ctx.send(dst, Mat::from_vec(1, 1, vec![round as f32]), K);
                    }
                }
                for src in 0..p {
                    if src != me {
                        let got = ctx.recv(src);
                        assert_eq!(
                            got.get(0, 0) as usize,
                            round,
                            "link {src}->{me} broke FIFO order"
                        );
                    }
                }
            }
        });
    }
}

/// Acceptance pin: zero retransmit traffic without drops, nonzero at a 0.2
/// drop rate, for every required cluster size.
#[test]
fn retransmit_bytes_zero_without_drops_nonzero_with() {
    for p in [2, 3, 4, 7] {
        let calm = FaultPlan::new(chaos_base() ^ 41).delay(0.3, 3);
        let out = Cluster::with_faults(p, calm).run(all_collectives(p));
        assert_eq!(
            total_retransmit_bytes(&out.stats),
            0,
            "p={p}: retransmits without any drop rate"
        );

        let stormy = FaultPlan::new(chaos_base() ^ 41)
            .drop_rate(0.2)
            .delay(0.3, 3);
        let out = Cluster::with_faults(p, stormy).run(all_collectives(p));
        assert!(
            total_retransmit_bytes(&out.stats) > 0,
            "p={p}: drop rate 0.2 produced no retransmit traffic"
        );
        assert!(total_retries(&out.stats) > 0, "p={p}: no retries recorded");
    }
}

/// The drain check stays armed under faults: a message that is sent but
/// never received panics the run instead of vanishing into the fabric.
#[test]
#[should_panic(expected = "unconsumed messages")]
fn unconsumed_message_panics_under_faults() {
    let plan = FaultPlan::new(chaos_base() ^ 7)
        .drop_rate(0.2)
        .delay(0.5, 3);
    Cluster::with_faults(2, plan).run(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, Mat::zeros(2, 2), K);
        }
        // Rank 1 never receives: Cluster::run must notice at join time.
    });
}

/// Redistribution volume still matches the paper's (P-1)/P formula under
/// faults — retransmitted bytes are accounted separately, never folded into
/// the payload counters the experiments report.
#[test]
fn redistribution_volume_formula_holds_under_faults() {
    let p = 4;
    let n = 32;
    let f = 8;
    let plan = FaultPlan::new(chaos_base() ^ 113)
        .drop_rate(0.2)
        .delay(0.2, 3);
    let out = Cluster::with_faults(p, plan).run(move |ctx| {
        let r = rdm_dense::part_range(n, p, ctx.rank());
        let local = Mat::zeros(r.len(), f);
        ctx.redistribute_h_to_v(&local, CollectiveKind::Redistribute);
    });
    let payload: u64 = out
        .stats
        .iter()
        .map(|s| s.bytes(CollectiveKind::Redistribute))
        .sum();
    assert_eq!(payload as usize, (p - 1) * n * f * 4 / p);
    assert!(total_retransmit_bytes(&out.stats) > 0);
}
