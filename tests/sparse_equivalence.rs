//! Sparse↔dense redistribution differential harness: the sparsity-aware
//! indexed-strip wire path must be *invisible* to the math — bit-identical
//! losses and accuracies for every ordering plan, cluster size, fault plan
//! and overlap depth — while `CommStats` reconciles the two volume books:
//! the sparse run's dense-equivalent bytes equal the dense run's actual
//! bytes, and its actual bytes never exceed them.
//!
//! The CI `sparsity` job sweeps this file over fault seeds (`CHAOS_SEED`)
//! and enforces the volume-regression gate at the bottom.

use gnn_rdm::comm::FaultPlan;
use gnn_rdm::core::{train_gcn, Plan, TrainReport, TrainerConfig};
use gnn_rdm::dense::mat::part_range;
use gnn_rdm::graph::{rmat, symmetrize, Dataset, DatasetSpec};
use gnn_rdm::model::{predict_epoch_ra, GnnShape, OrderConfig, SchedEvent};
use gnn_rdm::trace::TraceCollective;

/// Fault-seed offset from the environment, so the CI job can sweep
/// distinct fault universes without code changes.
fn chaos_base() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// A small dataset whose aggregation matrix has empty rows (self-loop-free
/// row normalization over a graph with isolated vertices), so the sparse
/// path actually compresses instead of trivially matching the dense one.
fn compressible_dataset() -> Dataset {
    DatasetSpec::synthetic("sparse-e2e", 180, 700, 12, 4)
        .instantiate(31)
        .with_row_aggregation()
}

/// The RMAT volume-gate config: pure Graph500-skewed RMAT (no SBM infill),
/// so a sizable fraction of vertices is isolated and their intermediate
/// rows stay bit-zero through every layer.
fn rmat_bench_dataset() -> Dataset {
    let n = 2048;
    let mut ds = DatasetSpec::synthetic("rmat-bench", n, 4096, 32, 8).instantiate(7);
    ds.adj = symmetrize(n, &rmat(n, 4096, 7));
    ds.with_row_aggregation()
}

/// Assert two runs are bitwise-identical in their training trajectory and
/// that their communication books reconcile: same per-kind dense volume,
/// sparse actual ≤ dense actual.
fn assert_runs_reconcile(dense: &TrainReport, sparse: &TrainReport, label: &str) {
    assert_eq!(dense.epochs.len(), sparse.epochs.len(), "{label}");
    for (d, s) in dense.epochs.iter().zip(&sparse.epochs) {
        let e = d.epoch;
        assert_eq!(
            d.loss.to_bits(),
            s.loss.to_bits(),
            "{label} epoch {e}: loss diverged ({} vs {})",
            d.loss,
            s.loss
        );
        assert_eq!(
            d.train_acc.to_bits(),
            s.train_acc.to_bits(),
            "{label} epoch {e}: train accuracy diverged"
        );
        assert_eq!(
            d.test_acc.to_bits(),
            s.test_acc.to_bits(),
            "{label} epoch {e}: test accuracy diverged"
        );
        // Volume reconciliation: the dense path books identical actual and
        // dense-equivalent bytes; the sparse path preserves the
        // dense-equivalent book and only shrinks the actual one.
        assert_eq!(
            d.redistribution_bytes(),
            d.redistribution_dense_bytes(),
            "{label} epoch {e}: dense run's two books disagree"
        );
        assert_eq!(
            d.redistribution_dense_bytes(),
            s.redistribution_dense_bytes(),
            "{label} epoch {e}: dense-equivalent volume changed"
        );
        assert!(
            s.redistribution_bytes() <= d.redistribution_bytes(),
            "{label} epoch {e}: sparse path sent {} B, above the dense {} B",
            s.redistribution_bytes(),
            d.redistribution_bytes()
        );
    }
}

#[test]
fn sparse_is_bitwise_identical_across_all_plans_and_cluster_sizes() {
    let ds = compressible_dataset();
    for p in [1usize, 2, 4] {
        for id in 0..16 {
            let base = TrainerConfig::rdm(p, Plan::from_id(id, 2, p))
                .hidden(8)
                .epochs(3);
            let dense = train_gcn(&ds, &base).unwrap();
            let sparse = train_gcn(&ds, &base.clone().sparse()).unwrap();
            assert_runs_reconcile(&dense, &sparse, &format!("p={p} id={id}"));
        }
    }
}

#[test]
fn sparse_survives_chaos_and_overlap_bitwise() {
    // The strip format rides the same fault-envelope protocol and chunk
    // pipeline as dense payloads: a dropped or delayed strip retransmits,
    // and a chunked sparse redistribution still reconstructs exactly.
    let ds = compressible_dataset();
    let base = TrainerConfig::rdm(4, Plan::from_id(10, 2, 4))
        .hidden(16)
        .epochs(4)
        .lr(0.02);
    let faults = FaultPlan::new(chaos_base() ^ 0x51AB)
        .drop_rate(0.2)
        .delay(0.2, 3)
        .straggler(0.02, 20_000);

    let dense = train_gcn(&ds, &base).unwrap();
    for chunks in [None, Some(4)] {
        let mut cfg = base.clone().sparse().faults(faults);
        if let Some(c) = chunks {
            cfg = cfg.overlap(c);
        }
        let sparse = train_gcn(&ds, &cfg).unwrap();
        assert_runs_reconcile(&dense, &sparse, &format!("chaos chunks={chunks:?}"));
        assert!(
            sparse.total_retries() > 0,
            "chunks={chunks:?}: drop rate 0.2 never retried — chaos not exercised"
        );
    }
}

#[test]
fn sparse_actually_compresses_on_compressible_data() {
    // Guards against the sparse knob silently degenerating into the dense
    // path: on a dataset with empty aggregation rows, at least one epoch's
    // actual redistribution bytes must drop strictly below dense.
    let ds = compressible_dataset();
    let base = TrainerConfig::rdm(4, Plan::from_id(10, 2, 4))
        .hidden(8)
        .epochs(3);
    let dense = train_gcn(&ds, &base).unwrap();
    let sparse = train_gcn(&ds, &base.clone().sparse()).unwrap();
    assert_runs_reconcile(&dense, &sparse, "compression");
    assert!(
        sparse.total_redistribution_bytes() < dense.total_redistribution_bytes(),
        "sparse path never compressed anything: {} B vs {} B",
        sparse.total_redistribution_bytes(),
        dense.total_redistribution_bytes()
    );
}

#[test]
fn sparse_is_bitwise_identical_across_replication_factors() {
    // The indexed-strip wire format composes with R_A < P: group-scoped
    // redistributions ship strips, panel broadcasts stay dense, and the
    // training trajectory stays bit-identical to the dense run at the
    // same replication factor — with both volume books reconciling.
    let ds = compressible_dataset();
    let p = 4usize;
    for r_a in [1usize, 2, 4] {
        for id in [0usize, 5, 10] {
            let base = TrainerConfig::rdm(p, Plan::from_id(id, 2, p).with_ra(r_a))
                .hidden(8)
                .epochs(3);
            let dense = train_gcn(&ds, &base).unwrap();
            let sparse = train_gcn(&ds, &base.clone().sparse()).unwrap();
            assert_runs_reconcile(&dense, &sparse, &format!("r_a={r_a} id={id}"));
            // Panel broadcasts are dense on both paths: byte-for-byte
            // identical books, nonzero exactly when the grid has more
            // than one panel.
            for (d, s) in dense.epochs.iter().zip(&sparse.epochs) {
                assert_eq!(
                    d.broadcast_bytes(),
                    s.broadcast_bytes(),
                    "r_a={r_a} id={id}: broadcast volume diverged between wire formats"
                );
                assert_eq!(
                    d.broadcast_bytes() > 0,
                    r_a < p,
                    "r_a={r_a} id={id}: broadcast book inconsistent with the grid"
                );
            }
        }
    }
}

#[test]
fn replicated_panel_volume_reconciles_exactly_with_the_schedule_predictor() {
    // The R_A = 2 volume gate on the bench-smoke config: measured
    // group-redistribution and panel-broadcast bytes must equal the
    // schedule predictor's totals *exactly*, on both CommStats books —
    // and the predictor's totals are themselves the paper's closed-form
    // `group_redistribution_elems` / `panel_broadcast_elems` volumes.
    let ds = rmat_bench_dataset();
    let (p, r_a) = (4usize, 2usize);
    let base = TrainerConfig::rdm(p, Plan::from_id(10, 2, p).with_ra(r_a))
        .hidden(32)
        .epochs(2);
    let dense = train_gcn(&ds, &base).unwrap();
    let sparse = train_gcn(&ds, &base.clone().sparse()).unwrap();
    assert_runs_reconcile(&dense, &sparse, "r_a=2 rmat gate");

    // Predicted per-epoch totals, summed over the grid.
    let n = ds.n();
    let shape = GnnShape {
        n,
        nnz: ds.adj_norm.nnz(),
        feats: vec![ds.spec.feature_size, 32, ds.spec.labels],
    };
    let config = OrderConfig::from_id(10, 2);
    let indptr = ds.adj_norm.indptr();
    let panel_nnz: Vec<usize> = (0..p / r_a)
        .map(|k| {
            let r0 = part_range(n, p, k * r_a).start;
            let r1 = part_range(n, p, (k + 1) * r_a - 1).end;
            indptr[r1] - indptr[r0]
        })
        .collect();
    let (mut redist, mut bcast) = (0u64, 0u64);
    for rank in 0..p {
        for e in predict_epoch_ra(&shape, &config, true, p, r_a, rank, &panel_nnz).unwrap() {
            match e {
                SchedEvent::Redist {
                    kind: TraceCollective::Redistribute,
                    bytes,
                    ..
                } => redist += bytes,
                SchedEvent::Broadcast { bytes } => bcast += bytes,
                _ => {}
            }
        }
    }
    assert!(redist > 0 && bcast > 0, "degenerate predicted schedule");
    for (rep, label) in [(&dense, "dense"), (&sparse, "sparse")] {
        for ep in &rep.epochs {
            assert_eq!(
                ep.redistribution_dense_bytes(),
                redist,
                "{label} epoch {}: group-redistribution dense-equivalent book \
                 diverged from the cost model",
                ep.epoch
            );
            assert_eq!(
                ep.broadcast_bytes(),
                bcast,
                "{label} epoch {}: panel-broadcast book diverged from the cost model",
                ep.epoch
            );
        }
    }
    // The dense wire path's actual book is the dense-equivalent one.
    for ep in &dense.epochs {
        assert_eq!(ep.redistribution_bytes(), redist);
    }

    // Cross-check the predictor against the paper's closed forms: on this
    // evenly-divisible config every group redistribution of a width-f
    // matrix moves (R_A-1)/R_A·N·f elements and every panel SpMM
    // broadcasts (P/R_A-1)·N·f. Events align index-wise across ranks
    // (every rank runs the same control flow), so each event's grid-wide
    // total must hit one of the per-width closed-form volumes.
    use gnn_rdm::model::{group_redistribution_elems, panel_broadcast_elems};
    let gre: Vec<u64> = shape
        .feats
        .iter()
        .map(|&f| (group_redistribution_elems(n, f, r_a) * 4.0) as u64)
        .collect();
    let pbe: Vec<u64> = shape
        .feats
        .iter()
        .map(|&f| (panel_broadcast_elems(n, f, p, r_a) * 4.0) as u64)
        .collect();
    let per_rank: Vec<Vec<SchedEvent>> = (0..p)
        .map(|rank| predict_epoch_ra(&shape, &config, true, p, r_a, rank, &panel_nnz).unwrap())
        .collect();
    for (i, e) in per_rank[0].iter().enumerate() {
        let total = |pick: fn(&SchedEvent) -> Option<u64>| -> u64 {
            per_rank.iter().map(|ev| pick(&ev[i]).unwrap()).sum()
        };
        match e {
            SchedEvent::Redist {
                kind: TraceCollective::Redistribute,
                ..
            } => {
                let sum = total(|e| match e {
                    SchedEvent::Redist { bytes, .. } => Some(*bytes),
                    _ => None,
                });
                assert!(
                    gre.contains(&sum),
                    "event {i}: group redistribution total {sum} matches no \
                     (R_A-1)/R_A·N·f volume in {gre:?}"
                );
            }
            SchedEvent::Broadcast { .. } => {
                let sum = total(|e| match e {
                    SchedEvent::Broadcast { bytes } => Some(*bytes),
                    _ => None,
                });
                assert!(
                    pbe.contains(&sum),
                    "event {i}: panel broadcast total {sum} matches no \
                     (P/R_A-1)·N·f volume in {pbe:?}"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn volume_regression_gate_on_rmat_bench_config() {
    // The CI-gated claim: on the hub-heavy RMAT bench config the sparse
    // path's actual redistribution bytes land strictly below the dense
    // `(P-1)/P·N·f` volume, by a pinned margin with headroom. The pinned
    // ratio (measured ≈ 0.71 on this config) fails the build if a wire-
    // format or support-computation regression erodes the win.
    const MAX_RATIO: f64 = 0.80;
    let ds = rmat_bench_dataset();
    let base = TrainerConfig::rdm(4, Plan::from_id(10, 2, 4))
        .hidden(32)
        .epochs(3);
    let dense = train_gcn(&ds, &base).unwrap();
    let sparse = train_gcn(&ds, &base.clone().sparse()).unwrap();
    assert_runs_reconcile(&dense, &sparse, "rmat gate");

    let dense_b = dense.total_redistribution_bytes();
    let sparse_b = sparse.total_redistribution_bytes();
    let ratio = sparse_b as f64 / dense_b as f64;
    eprintln!("volume gate: sparse {sparse_b} B / dense {dense_b} B = {ratio:.4}");
    assert!(
        ratio < MAX_RATIO,
        "volume regression: sparse/dense ratio {ratio:.4} exceeds the pinned {MAX_RATIO}"
    );
    // And the dense-equivalent book still matches the dense run exactly,
    // so the paper's volume formulas remain checkable as the dense bound.
    assert_eq!(
        sparse.total_redistribution_dense_bytes(),
        dense_b,
        "dense-equivalent book drifted from the dense run"
    );
}
