//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal bench harness with criterion's call-site API:
//! `criterion_group!` / `criterion_main!`, benchmark groups, throughput
//! annotations, [`BenchmarkId`], and `Bencher::iter`.
//!
//! Semantics: `--test` (what `cargo bench -- --test` and the CI
//! `bench-smoke` job pass) runs every benchmark closure exactly once and
//! prints `ok` — catching bench bit-rot without timing noise. Without
//! `--test`, each benchmark is warmed up and run for `sample_size` timed
//! iterations, reporting mean iteration time and derived throughput. No
//! statistics, plots, or baselines.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work performed per iteration, used to derive throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark's display identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Harness entry point; holds the parsed CLI mode.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
}

impl Criterion {
    /// Parse the arguments cargo-bench passes through (`--bench`,
    /// `--test`, name filters). Unknown flags are ignored.
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with('-') => {}
                s => filters.push(s.to_string()),
            }
        }
        Criterion { test_mode, filters }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id.id, None, 10, f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f.as_str()))
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

/// A named group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(self.harness, &full, self.throughput, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Passed to every benchmark closure; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    test_mode: bool,
    iterations: usize,
    total: Duration,
    measured_iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std_black_box(routine());
            return;
        }
        // Warmup, then timed samples.
        for _ in 0..2 {
            std_black_box(routine());
        }
        let t0 = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.total = t0.elapsed();
        self.measured_iters = self.iterations as u64;
    }
}

fn run_one<F>(
    harness: &Criterion,
    full_id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if !harness.matches(full_id) {
        return;
    }
    if harness.test_mode {
        print!("Testing {full_id} ... ");
        let mut b = Bencher {
            test_mode: true,
            iterations: 1,
            total: Duration::ZERO,
            measured_iters: 0,
        };
        f(&mut b);
        println!("ok");
        return;
    }
    let mut b = Bencher {
        test_mode: false,
        iterations: sample_size,
        total: Duration::ZERO,
        measured_iters: 0,
    };
    f(&mut b);
    if b.measured_iters == 0 {
        println!("{full_id:<50} (no iterations run)");
        return;
    }
    let mean = b.total.as_secs_f64() / b.measured_iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if mean > 0.0 => {
            format!("  {:>10.1} MiB/s", bytes as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:>10.1} Kelem/s", n as f64 / mean / 1e3)
        }
        _ => String::new(),
    };
    println!("{full_id:<50} {:>12.3} ms/iter{rate}", mean * 1e3);
}

/// Bundle benchmark functions into a group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` for a bench binary with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn runs_in_test_mode_and_bench_mode() {
        for test_mode in [true, false] {
            let mut c = Criterion {
                test_mode,
                filters: vec![],
            };
            benches(&mut c);
        }
    }

    #[test]
    fn filters_select_by_substring() {
        let mut hit = false;
        let c = Criterion {
            test_mode: true,
            filters: vec!["plain".into()],
        };
        if c.matches("g/plain") {
            hit = true;
        }
        assert!(hit);
        assert!(!c.matches("g/other"));
    }
}
