//! Schedule-conformance harness: recorded traces of real training runs
//! must match the model's predicted per-rank event sequence — op kinds,
//! redistribution directions, payload bytes, kernel shapes — for every
//! Table-IV ordering, and a deliberately corrupted trace must fail with a
//! rank-and-index-specific diff.
//!
//! `CHAOS_SEED` (env) shifts the fault seed so CI can sweep chaos
//! schedules without code changes.

use gnn_rdm::comm::FaultPlan;
use gnn_rdm::core::gcn::GcnWeights;
use gnn_rdm::core::{train_gcn, Plan, TrainerConfig, WeightSnapshot};
use gnn_rdm::dense::mat::part_range;
use gnn_rdm::graph::{Dataset, DatasetSpec};
use gnn_rdm::model::{
    check_session, check_session_ra, conformance, GnnShape, OrderConfig, SessionBatch,
};
use gnn_rdm::serve::{planned_batches, serve, LoadGen, ServeConfig};
use gnn_rdm::trace::{chrome, EventData, RankTrace, Span};

/// Nonzeros of each adjacency row panel of the `p/r_a × r_a` grid —
/// panel `k` spans the contiguous row slices of ranks `[k·r_a, (k+1)·r_a)`.
/// The data-dependent input the replicated-panel predictor cannot derive
/// from the shape alone.
fn panel_nnz(ds: &Dataset, p: usize, r_a: usize) -> Vec<usize> {
    let indptr = ds.adj_norm.indptr();
    let n = ds.n();
    (0..p / r_a)
        .map(|k| {
            let r0 = part_range(n, p, k * r_a).start;
            let r1 = part_range(n, p, (k + 1) * r_a - 1).end;
            indptr[r1] - indptr[r0]
        })
        .collect()
}

fn dataset() -> Dataset {
    DatasetSpec::synthetic("conformance", 140, 1100, 16, 5).instantiate(31)
}

fn chaos_base() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn shape_of(ds: &Dataset, hidden: usize) -> GnnShape {
    GnnShape {
        n: ds.n(),
        nnz: ds.adj_norm.nnz(),
        feats: vec![ds.spec.feature_size, hidden, ds.spec.labels],
    }
}

fn traced_run(ds: &Dataset, cfg: TrainerConfig) -> Vec<RankTrace> {
    train_gcn(ds, &cfg.trace())
        .unwrap()
        .traces
        .expect("traced run returns traces")
}

#[test]
fn all_16_plans_conform_at_p_1_2_4_with_and_without_memoization() {
    let ds = dataset();
    let shape = shape_of(&ds, 16);
    for p in [1usize, 2, 4] {
        for id in 0..16 {
            for memoize in [true, false] {
                let mut plan = Plan::from_id(id, 2, p);
                if !memoize {
                    plan = plan.no_memoize();
                }
                let cfg = TrainerConfig::rdm(p, plan).hidden(16).epochs(2);
                let traces = traced_run(&ds, cfg);
                assert_eq!(traces.len(), p);
                let config = OrderConfig::from_id(id, 2);
                let violations = conformance::check_run(&traces, &shape, &config, memoize)
                    .unwrap_or_else(|e| {
                        panic!("p={p} id={id} memoize={memoize}: malformed trace: {e}")
                    });
                assert!(
                    violations.is_empty(),
                    "p={p} id={id} memoize={memoize}: {} violation(s), first: {}",
                    violations.len(),
                    violations[0]
                );
            }
        }
    }
}

#[test]
fn conformance_holds_under_overlap_and_chaos() {
    // The pipelined path and fault retransmissions must not change the
    // extracted schedule: same spans, same payload bytes.
    let ds = dataset();
    let shape = shape_of(&ds, 16);
    let faults = FaultPlan::new(chaos_base() ^ 0xD1CE)
        .drop_rate(0.08)
        .delay(0.25, 3)
        .straggler(0.02, 20_000);
    for id in [0usize, 5, 10, 15] {
        let cfg = TrainerConfig::rdm(4, Plan::from_id(id, 2, 4))
            .hidden(16)
            .epochs(2)
            .overlap(3)
            .faults(faults);
        let traces = traced_run(&ds, cfg);
        let config = OrderConfig::from_id(id, 2);
        let violations = conformance::check_run(&traces, &shape, &config, true).unwrap();
        assert!(
            violations.is_empty(),
            "id={id}: overlap+chaos broke conformance: {}",
            violations[0]
        );
    }
}

#[test]
fn replicated_panel_runs_conform_across_plans_and_chaos() {
    // R_A < P training must be explained by the grid-aware predictor:
    // group-scoped redistribution bytes and the panel tile broadcasts,
    // blocking and pipelined, with and without faults. Zero violations
    // across plans × R_A ∈ {1, 2} × chaos.
    let ds = dataset();
    let shape = shape_of(&ds, 16);
    let faults = FaultPlan::new(chaos_base() ^ 0xAB5E)
        .drop_rate(0.08)
        .delay(0.25, 3);
    for id in [0usize, 5, 10, 15] {
        for r_a in [1usize, 2] {
            for (overlap, chaos) in [(None, false), (Some(3), false), (Some(3), true)] {
                let mut cfg = TrainerConfig::rdm(4, Plan::from_id(id, 2, 4).with_ra(r_a))
                    .hidden(16)
                    .epochs(2);
                if let Some(chunks) = overlap {
                    cfg = cfg.overlap(chunks);
                }
                if chaos {
                    cfg = cfg.faults(faults);
                }
                let traces = traced_run(&ds, cfg);
                let config = OrderConfig::from_id(id, 2);
                let nnz = panel_nnz(&ds, 4, r_a);
                let violations =
                    conformance::check_run_ra(&traces, &shape, &config, true, r_a, &nnz)
                        .unwrap_or_else(|e| {
                            panic!("id={id} r_a={r_a} overlap={overlap:?} chaos={chaos}: {e}")
                        });
                assert!(
                    violations.is_empty(),
                    "id={id} r_a={r_a} overlap={overlap:?} chaos={chaos}: {} violation(s), \
                     first: {}",
                    violations.len(),
                    violations[0]
                );
            }
        }
    }
}

#[test]
fn replicated_panel_corruption_yields_one_addressed_violation() {
    // Acceptance: corrupt exactly one event of an R_A = 2 run and the
    // checker must return exactly one violation, addressed to the rank
    // and schedule index of the corruption.
    let ds = dataset();
    let shape = shape_of(&ds, 16);
    let cfg = TrainerConfig::rdm(4, Plan::from_id(10, 2, 4).with_ra(2))
        .hidden(16)
        .epochs(1);
    let mut traces = traced_run(&ds, cfg);
    let config = OrderConfig::from_id(10, 2);
    let nnz = panel_nnz(&ds, 4, 2);
    assert!(
        conformance::check_run_ra(&traces, &shape, &config, true, 2, &nnz)
            .unwrap()
            .is_empty()
    );
    // Corrupt the first SpMM span of rank 3: one wrong panel-row count.
    let victim = traces[3]
        .events
        .iter_mut()
        .find(|e| matches!(e.data, EventData::Begin(Span::Spmm { .. })))
        .expect("rank 3 ran an SpMM");
    if let EventData::Begin(Span::Spmm {
        rows,
        cols,
        nnz,
        width,
    }) = victim.data
    {
        victim.data = EventData::Begin(Span::Spmm {
            rows: rows + 1,
            cols,
            nnz,
            width,
        });
    }
    let violations = conformance::check_run_ra(&traces, &shape, &config, true, 2, &nnz).unwrap();
    assert_eq!(
        violations.len(),
        1,
        "one corrupted field must yield exactly one violation: {violations:?}"
    );
    assert_eq!(violations[0].rank, 3);
    let msg = violations[0].to_string();
    assert!(msg.contains("rank 3"), "{msg}");
    assert!(msg.contains("expected") && msg.contains("got"), "{msg}");
}

#[test]
fn full_replication_traces_fail_a_mismatched_grid_prediction() {
    // The grid matters: checking an R_A = P run against an R_A = 2
    // prediction must surface violations (panel broadcasts that never
    // happened), not silently pass out-of-scope input.
    let ds = dataset();
    let shape = shape_of(&ds, 16);
    let cfg = TrainerConfig::rdm(4, Plan::from_id(10, 2, 4))
        .hidden(16)
        .epochs(1);
    let traces = traced_run(&ds, cfg);
    let config = OrderConfig::from_id(10, 2);
    let nnz = panel_nnz(&ds, 4, 2);
    let violations = conformance::check_run_ra(&traces, &shape, &config, true, 2, &nnz).unwrap();
    assert!(
        !violations.is_empty(),
        "a full-replication trace conformed to the R_A = 2 schedule"
    );
}

#[test]
fn corrupting_one_event_fails_with_rank_and_index_specific_diff() {
    let ds = dataset();
    let shape = shape_of(&ds, 16);
    let cfg = TrainerConfig::rdm(2, Plan::from_id(0, 2, 2))
        .hidden(16)
        .epochs(1);
    let mut traces = traced_run(&ds, cfg);
    let config = OrderConfig::from_id(0, 2);
    assert!(conformance::check_run(&traces, &shape, &config, true)
        .unwrap()
        .is_empty());
    // Corrupt the first SpMM span of rank 1: one wrong column count.
    let victim = traces[1]
        .events
        .iter_mut()
        .find(|e| matches!(e.data, EventData::Begin(Span::Spmm { .. })))
        .expect("rank 1 ran an SpMM");
    if let EventData::Begin(Span::Spmm {
        rows,
        cols,
        nnz,
        width,
    }) = victim.data
    {
        victim.data = EventData::Begin(Span::Spmm {
            rows,
            cols: cols + 1,
            nnz,
            width,
        });
    }
    let violations = conformance::check_run(&traces, &shape, &config, true).unwrap();
    assert_eq!(
        violations.len(),
        1,
        "one corrupted field must yield exactly one violation: {violations:?}"
    );
    let v = &violations[0];
    assert_eq!(v.rank, 1);
    assert_eq!(v.epoch, 0);
    // ID 0 layer 1 is SpMM-first on a dual-form input: the SpMM is the
    // very first schedule event.
    assert_eq!(v.index, 0);
    let msg = v.to_string();
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(msg.contains("event 0"), "{msg}");
    assert!(msg.contains("expected") && msg.contains("got"), "{msg}");
}

#[test]
fn corrupting_payload_bytes_is_caught() {
    // Schedule conformance covers volumes, not just op kinds: retag one
    // redistribution send's byte count and the diff must surface it.
    let ds = dataset();
    let shape = shape_of(&ds, 16);
    let cfg = TrainerConfig::rdm(4, Plan::from_id(10, 2, 4))
        .hidden(16)
        .epochs(1);
    let mut traces = traced_run(&ds, cfg);
    let config = OrderConfig::from_id(10, 2);
    let victim = traces[2]
        .events
        .iter_mut()
        .find(|e| matches!(e.data, EventData::Collective { .. }))
        .expect("rank 2 sent something");
    if let EventData::Collective {
        kind,
        peer,
        bytes,
        dense_bytes,
        msg_seq,
    } = victim.data
    {
        victim.data = EventData::Collective {
            kind,
            peer,
            bytes: bytes + 4,
            dense_bytes: dense_bytes + 4,
            msg_seq,
        };
    }
    let violations = conformance::check_run(&traces, &shape, &config, true).unwrap();
    assert!(!violations.is_empty(), "byte corruption went unnoticed");
    assert!(violations.iter().all(|v| v.rank == 2));
}

#[test]
fn exported_chrome_json_passes_schema_validation() {
    let ds = dataset();
    for p in [1usize, 2, 4] {
        let cfg = TrainerConfig::rdm(p, Plan::from_id(10, 2, p))
            .hidden(16)
            .epochs(2);
        let traces = traced_run(&ds, cfg);
        for normalized in [false, true] {
            let json = chrome::to_chrome_json(&traces, normalized);
            chrome::validate(&json)
                .unwrap_or_else(|e| panic!("p={p} normalized={normalized}: {e}"));
        }
    }
}

/// A traced serving session plus the schedule the predictor needs: the
/// per-batch admission markers and targets, rebuilt exactly as the engine
/// builds them (a pure function of the shared request stream).
fn traced_session(
    ds: &Dataset,
    snap: &WeightSnapshot,
    cfg: &ServeConfig,
) -> (Vec<RankTrace>, Vec<SessionBatch>) {
    let reqs = LoadGen::new(41, 3, 30, 36).zipf(4).generate(ds.n());
    let mut cfg = cfg.clone();
    cfg.trace = true;
    let out = serve(ds, snap, &reqs, &cfg).unwrap();
    let batches = planned_batches(&reqs, &cfg.policy)
        .iter()
        .map(|b| SessionBatch {
            idx: b.idx,
            requests: b.requests.iter().map(|r| (r.client, r.req_id)).collect(),
            targets: b.requests.iter().map(|r| r.target).collect(),
        })
        .collect();
    (out.traces.expect("traced session returns traces"), batches)
}

#[test]
fn serving_sessions_conform_across_plans_cache_and_pipeline() {
    // The serving predictor must explain every rank's recorded per-batch
    // event sequence from (plan id, P, batch schedule, cache state) alone:
    // zero violations across plan ids × cache on/off × pipeline on/off,
    // including cache-pruned Redist frames whose bytes follow the
    // directory replay.
    let ds = dataset();
    let snap = WeightSnapshot::from_weights(&GcnWeights::init(&[16, 10, 5], 23));
    let shape = GnnShape {
        n: ds.n(),
        nnz: ds.adj_norm.nnz(),
        feats: vec![16, 10, 5],
    };
    for id in [0usize, 5, 10, 15] {
        for cache in [0usize, 16] {
            for pipeline in [None, Some(3)] {
                let mut cfg = ServeConfig::new(2);
                cfg.plan = Some(Plan::from_id(id, 2, 2));
                cfg.cache = cache;
                cfg.pipeline = pipeline;
                let (traces, batches) = traced_session(&ds, &snap, &cfg);
                let config = OrderConfig::from_id(id, 2);
                let violations = check_session(&traces, &shape, &config, true, &batches, cache)
                    .unwrap_or_else(|e| panic!("id={id} cache={cache} pipeline={pipeline:?}: {e}"));
                assert!(
                    violations.is_empty(),
                    "id={id} cache={cache} pipeline={pipeline:?}: {} violation(s), first: {}",
                    violations.len(),
                    violations[0]
                );
            }
        }
    }
}

#[test]
fn serving_conformance_survives_chaos() {
    // Fault retransmissions are transparent to the extracted serving
    // schedule: a chaotic cached+pipelined session conforms with zero
    // violations, same as the clean one.
    let ds = dataset();
    let snap = WeightSnapshot::from_weights(&GcnWeights::init(&[16, 10, 5], 23));
    let shape = GnnShape {
        n: ds.n(),
        nnz: ds.adj_norm.nnz(),
        feats: vec![16, 10, 5],
    };
    let mut cfg = ServeConfig::new(2);
    cfg.plan = Some(Plan::from_id(5, 2, 2));
    cfg.cache = 16;
    cfg.pipeline = Some(3);
    cfg.faults = Some(
        FaultPlan::new(chaos_base() ^ 0x5EBE)
            .drop_rate(0.15)
            .delay(0.25, 3),
    );
    let (traces, batches) = traced_session(&ds, &snap, &cfg);
    let config = OrderConfig::from_id(5, 2);
    let violations = check_session(&traces, &shape, &config, true, &batches, 16).unwrap();
    assert!(
        violations.is_empty(),
        "chaos broke serving conformance: {}",
        violations[0]
    );
}

#[test]
fn replicated_panel_serving_sessions_conform() {
    // Serving at R_A < P: the session predictor must explain every batch
    // of a replicated-panel session — group redistributions, panel
    // broadcasts flushed at the kernel span, blocking and pipelined —
    // with zero violations (the cache stays off: it requires R_A = P).
    let ds = dataset();
    let snap = WeightSnapshot::from_weights(&GcnWeights::init(&[16, 10, 5], 23));
    let shape = GnnShape {
        n: ds.n(),
        nnz: ds.adj_norm.nnz(),
        feats: vec![16, 10, 5],
    };
    for id in [0usize, 5, 10] {
        for r_a in [1usize, 2] {
            for pipeline in [None, Some(3)] {
                let mut cfg = ServeConfig::new(4);
                cfg.plan = Some(Plan::from_id(id, 2, 4).with_ra(r_a));
                cfg.pipeline = pipeline;
                let (traces, batches) = traced_session(&ds, &snap, &cfg);
                let config = OrderConfig::from_id(id, 2);
                let nnz = panel_nnz(&ds, 4, r_a);
                let violations =
                    check_session_ra(&traces, &shape, &config, true, &batches, 0, r_a, &nnz)
                        .unwrap_or_else(|e| panic!("id={id} r_a={r_a} pipeline={pipeline:?}: {e}"));
                assert!(
                    violations.is_empty(),
                    "id={id} r_a={r_a} pipeline={pipeline:?}: {} violation(s), first: {}",
                    violations.len(),
                    violations[0]
                );
            }
        }
    }
}

#[test]
fn corrupting_one_batch_event_yields_one_addressed_serving_violation() {
    let ds = dataset();
    let snap = WeightSnapshot::from_weights(&GcnWeights::init(&[16, 10, 5], 23));
    let shape = GnnShape {
        n: ds.n(),
        nnz: ds.adj_norm.nnz(),
        feats: vec![16, 10, 5],
    };
    let mut cfg = ServeConfig::new(2);
    cfg.plan = Some(Plan::from_id(5, 2, 2));
    cfg.cache = 16;
    let (mut traces, batches) = traced_session(&ds, &snap, &cfg);
    let config = OrderConfig::from_id(5, 2);
    assert!(check_session(&traces, &shape, &config, true, &batches, 16)
        .unwrap()
        .is_empty());
    // Corrupt rank 1's second batch span: one wrong admission count.
    let victim = traces[1]
        .events
        .iter_mut()
        .filter(|e| matches!(e.data, EventData::Begin(Span::Batch { .. })))
        .nth(1)
        .expect("session ran at least two batches");
    let batch_idx = if let EventData::Begin(Span::Batch { idx, size }) = victim.data {
        victim.data = EventData::Begin(Span::Batch {
            idx,
            size: size + 1,
        });
        idx
    } else {
        unreachable!()
    };
    let violations = check_session(&traces, &shape, &config, true, &batches, 16).unwrap();
    assert_eq!(
        violations.len(),
        1,
        "one corrupted batch event must yield exactly one violation: {violations:?}"
    );
    let v = &violations[0];
    assert_eq!(v.rank, 1);
    assert_eq!(v.batch, batch_idx);
    let msg = v.to_string();
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(msg.contains(&format!("batch {batch_idx}")), "{msg}");
    assert!(msg.contains("expected") && msg.contains("got"), "{msg}");
}

#[test]
fn three_layer_plans_conform_too() {
    // The predictor generalizes past Table IV's 2-layer encoding; spot
    // check a few 3-layer ids, including ones that exercise the
    // pathological weight-gradient paths.
    let ds = dataset();
    let shape = GnnShape {
        n: ds.n(),
        nnz: ds.adj_norm.nnz(),
        feats: vec![ds.spec.feature_size, 12, 12, ds.spec.labels],
    };
    for id in [0usize, 21, 42, 63, 37] {
        let cfg = TrainerConfig::rdm(3, Plan::from_id(id, 3, 3))
            .hidden(12)
            .layers(3)
            .epochs(2);
        let traces = traced_run(&ds, cfg);
        let config = OrderConfig::from_id(id, 3);
        let violations = conformance::check_run(&traces, &shape, &config, true).unwrap();
        assert!(violations.is_empty(), "3-layer id={id}: {}", violations[0]);
    }
}
