//! Graph datasets for GNN-RDM.
//!
//! The paper evaluates on eight public datasets (Table V) ranging up to
//! 117 M edges. Those graphs (and the CAMI metagenomic reads) are not
//! shippable here, so this crate provides *synthetic stand-ins with the
//! same shape parameters*: vertex count, edge count, feature width and
//! label count are taken from Table V (optionally scaled down by a common
//! factor for CPU execution), while the structure comes from an RMAT-style
//! power-law generator blended with planted communities so that (a) degree
//! skew stresses load balance the way real graphs do and (b) labels are
//! *learnable*, which the accuracy-vs-time experiment (Fig. 13) needs.
//!
//! * [`gen`] — RMAT, Erdős–Rényi and stochastic-block-model edge
//!   generators, symmetrization.
//! * [`dataset`] — [`DatasetSpec`] (shape parameters; includes the paper's
//!   eight rows) and [`Dataset`] (materialized graph + features + labels +
//!   splits).
//! * [`partition`] — range / random / greedy-BFS vertex partitioners and
//!   edge-cut accounting (the DGCL-like baseline's substrate).
//! * [`sampler`] — GraphSAINT node / edge / random-walk subgraph samplers.

pub mod dataset;
pub mod gen;
pub mod partition;
pub mod sampler;

pub use dataset::{paper_datasets, Dataset, DatasetSpec};
pub use gen::{erdos_renyi, rmat, sbm, symmetrize};
pub use partition::{edge_cut, greedy_bfs_partition, random_partition, range_partition};
pub use sampler::{SaintSampler, Subgraph};
