//! The serving session: one long-lived cluster, a stream of batches.
//!
//! [`serve`] brings up a simulated cluster once, loads the weight snapshot
//! on every rank, and drives the whole batch schedule through a single
//! [`Cluster::run`] call — the persistent worker pool and each rank's
//! workspace shelf live for the session, so after the first (warmup) batch
//! every matrix the forward pass needs comes off the shelf without a fresh
//! allocation. Batch composition is a pure function of the shared load
//! stream ([`crate::form_batches`]), so all ranks compute the identical
//! schedule with zero coordination traffic, the same shared-seed
//! discipline the paper's §III-F uses for redistribution.
//!
//! Latency is *virtual*: each batch's service time is the slowest rank's
//! device-model compute + communication cost, and completions follow the
//! one-batch-at-a-time queueing recurrence `dispatch_k = max(close_k,
//! completion_{k-1})`. Nothing reads the wall clock, so a session replays
//! byte-identically under a fixed seed — including under fault injection,
//! whose retransmissions never touch the payload book.

use rdm_comm::{Cluster, CommStats, FaultPlan};
use rdm_core::infer::forward_logits_with;
use rdm_core::ops::OpCounters;
use rdm_core::plan::{best_plan_with_ra_sparsity, Plan};
use rdm_core::{AggCache, OverlapSpec, WeightSnapshot};
use rdm_dense::kernels::{self, Mode as KernelMode};
use rdm_dense::mat::part_range;
use rdm_dense::pool;
use rdm_graph::dataset::Dataset;
use rdm_graph::sampler::Subgraph;
use rdm_model::{DeviceModel, GnnShape, Order};
use rdm_trace::{EventData, RankTrace, Span};

use crate::batch::{form_batches, Batch, BatchPolicy};
use crate::load::InferRequest;
use crate::report::{BatchTiming, RequestRecord, ServeReport};

/// How each batch's minibatch graph is formed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeSampler {
    /// Run every batch over the full graph (exact inference).
    Full,
    /// Run each batch over a deterministic fixed-size induced subgraph
    /// anchored at the batch's targets ([`Subgraph::around`]). The fixed
    /// budget keeps batch-to-batch matrix shapes identical, which is what
    /// lets the workspace pool serve steady-state batches alloc-free.
    Induced { budget: usize },
}

/// Configuration of a serving session.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Cluster size.
    pub p: usize,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// Minibatch formation.
    pub sampler: ServeSampler,
    /// Execution plan; `None` picks the device-model best for the serving
    /// shape (priced at [`ServeConfig::ra`]'s replication factor). The
    /// plan's `r_a` must divide `p`; `r_a < p` serves from the
    /// replicated-panel topology with bitwise-identical logits.
    pub plan: Option<Plan>,
    /// Adjacency replication factor for the auto-selected plan: candidates
    /// are priced at `config_cost(shape, cfg, p, r)` so the chosen ordering
    /// reflects the group-redistribution / panel-broadcast trade-off.
    /// `None` means full replication. Must divide `p`; an explicit
    /// [`ServeConfig::plan`] carries its own `r_a` and conflicts with a
    /// different value here. Incompatible with the aggregation cache
    /// (which indexes the fully replicated adjacency) when `r < p`.
    pub ra: Option<usize>,
    /// Ship redistribution payloads in the sparsity-compressed wire format.
    pub sparse: bool,
    /// Fault injection for the session's fabric.
    pub faults: Option<FaultPlan>,
    /// Record per-rank structured traces (Batch/Serve spans included).
    pub trace: bool,
    /// Device model pricing the virtual service times.
    pub device: DeviceModel,
    /// Seed for the induced sampler's hash fill.
    pub sample_seed: u64,
    /// Kernel path the session's GEMM/SpMM calls dispatch to. Scalar (the
    /// default) keeps serving bitwise-identical to the scalar direct
    /// forward; `Fast(w)` serves with the lane-unrolled microkernels and
    /// stays bitwise-identical to a direct forward run at the same width.
    pub kernels: KernelMode,
    /// Pipelined batch admission: issue every redistribution as this many
    /// strips and run the kernels strip by strip
    /// ([`OverlapSpec`]), hiding communication behind compute. The hidden
    /// time lands in the virtual latency timeline (and lets a dispatched
    /// batch prefetch behind its predecessor); logits stay bitwise
    /// identical to sequential serving. `None` (default) is the blocking
    /// schedule; `Some(chunks)` needs `chunks >= 2`.
    pub pipeline: Option<usize>,
    /// Per-rank row capacity of the frozen-weight layer-0 aggregation
    /// cache ([`AggCache`]); `0` (default) disables it. Requires the
    /// full-graph sampler; on plans whose first layer is GEMM-first the
    /// cache has nothing to store and stays inert (all counters zero).
    pub cache: usize,
}

impl ServeConfig {
    pub fn new(p: usize) -> Self {
        ServeConfig {
            p,
            policy: BatchPolicy::new(8, 2_000),
            sampler: ServeSampler::Full,
            plan: None,
            ra: None,
            sparse: false,
            faults: None,
            trace: false,
            device: DeviceModel::a6000_pcie(),
            sample_seed: 0x5EED,
            kernels: KernelMode::Scalar,
            pipeline: None,
            cache: 0,
        }
    }

    /// Enable pipelined batch admission with `chunks` strips per
    /// redistribution.
    pub fn pipelined(mut self, chunks: usize) -> Self {
        self.pipeline = Some(chunks);
        self
    }

    /// Enable the aggregation cache with `rows` rows per rank.
    pub fn cached(mut self, rows: usize) -> Self {
        self.cache = rows;
        self
    }

    /// Serve at replication factor `r` (see [`ServeConfig::ra`]).
    pub fn ra(mut self, r: usize) -> Self {
        self.ra = Some(r);
        self
    }

    /// Serve with the lane-unrolled fast microkernels at the widest
    /// profitable width for this host.
    pub fn fast_kernels(self) -> Self {
        self.kernel_mode(KernelMode::Fast(kernels::detect_width()))
    }

    /// Force a specific kernel mode, swapping the simulated
    /// [`DeviceModel`] to the calibration matching the kernel path so
    /// virtual service times track the executed kernels.
    pub fn kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernels = mode;
        self.device = match mode {
            KernelMode::Scalar => DeviceModel::a6000_pcie(),
            KernelMode::Fast(_) => DeviceModel::a6000_pcie_fast(),
        };
        self
    }
}

/// A finished serving session.
#[derive(Debug)]
pub struct ServeOutput {
    pub report: ServeReport,
    /// Merged communication statistics across ranks.
    pub stats: CommStats,
    /// Per-rank traces when [`ServeConfig::trace`] is set.
    pub traces: Option<Vec<RankTrace>>,
}

/// What one rank records about one batch.
struct RankBatchRecord {
    ops: OpCounters,
    bytes: u64,
    msgs: u64,
    ws_fresh: u64,
    ws_reused: u64,
    /// Modeled nanoseconds of communication the pipeline hid this batch.
    overlap_ns: u64,
    /// Aggregation-cache accounting (identical on every rank — the
    /// directory is a shared deterministic simulation).
    hits: u64,
    misses: u64,
    /// Whether this batch counts as warmup for the workspace-pool book:
    /// the first batch, or any batch right after the cache directory
    /// changed (a changed directory reshapes the thinned exchange, so the
    /// next batch re-warms those buffers).
    warmup: bool,
}

/// Serve `requests` against `ds` with the weights in `snap`.
///
/// Returns the per-request logits (each request served exactly once, on
/// the rank owning its target's row), the virtual-latency report, and the
/// session's communication statistics. Errors on configuration the engine
/// cannot execute rather than panicking mid-session.
pub fn serve(
    ds: &Dataset,
    snap: &WeightSnapshot,
    requests: &[InferRequest],
    cfg: &ServeConfig,
) -> Result<ServeOutput, String> {
    let n = ds.n();
    let p = cfg.p;
    if p == 0 {
        return Err("cluster needs at least one rank".into());
    }
    if n < p {
        return Err(format!("graph with {n} vertices cannot span {p} ranks"));
    }
    if cfg.policy.max_batch == 0 {
        return Err("batch policy must admit at least one request".into());
    }
    let feats = snap.feats();
    if feats.first() != Some(&ds.features.cols()) {
        return Err(format!(
            "snapshot expects {}-dimensional input features, dataset has {}",
            feats.first().copied().unwrap_or(0),
            ds.features.cols()
        ));
    }
    if feats.last() != Some(&ds.num_classes()) {
        return Err(format!(
            "snapshot emits {} classes, dataset has {}",
            feats.last().copied().unwrap_or(0),
            ds.num_classes()
        ));
    }
    if let Some(bad) = requests.iter().find(|r| (r.target as usize) >= n) {
        return Err(format!(
            "request {} targets vertex {} outside graph of {n}",
            bad.idx, bad.target
        ));
    }
    if let Some(chunks) = cfg.pipeline {
        if chunks < 2 {
            return Err(format!(
                "pipelined admission needs at least 2 chunks, got {chunks}"
            ));
        }
    }
    if cfg.cache > 0 && matches!(cfg.sampler, ServeSampler::Induced { .. }) {
        return Err("the aggregation cache requires the full-graph sampler \
                    (induced minibatches have per-batch aggregation matrices)"
            .into());
    }
    let serve_n = match cfg.sampler {
        ServeSampler::Full => n,
        ServeSampler::Induced { budget } => {
            if budget < p.max(4) {
                return Err(format!(
                    "sampler budget {budget} below minimum {}",
                    p.max(4)
                ));
            }
            if budget < cfg.policy.max_batch {
                return Err(format!(
                    "sampler budget {budget} cannot hold a full batch of {}",
                    cfg.policy.max_batch
                ));
            }
            budget.min(n)
        }
    };

    // One plan for the whole session, priced for the serving shape.
    let layers = snap.layers();
    let hidden = if layers >= 2 {
        feats[1]
    } else {
        ds.num_classes()
    };
    let nnz_est = ((ds.adj_norm.nnz() * serve_n) / n).max(serve_n);
    let shape = GnnShape::gcn(
        serve_n,
        nnz_est,
        ds.features.cols(),
        hidden,
        ds.num_classes(),
        layers,
    );
    if let (Some(plan), Some(r)) = (&cfg.plan, cfg.ra) {
        if plan.r_a != r {
            return Err(format!(
                "explicit plan has r_a = {} but the config asks for r_a = {r}",
                plan.r_a
            ));
        }
    }
    let r_a = cfg.plan.as_ref().map(|pl| pl.r_a).or(cfg.ra).unwrap_or(p);
    if r_a == 0 || !p.is_multiple_of(r_a) {
        return Err(format!("replication factor {r_a} must divide P = {p}"));
    }
    let plan = cfg.plan.clone().unwrap_or_else(|| {
        let sigma = if cfg.sparse {
            1.0 - ds.adj_norm.empty_row_fraction()
        } else {
            1.0
        };
        best_plan_with_ra_sparsity(&shape, p, r_a, &cfg.device, sigma)
    });
    if cfg.cache > 0 && plan.r_a != p {
        return Err(format!(
            "the layer-0 aggregation cache indexes the fully replicated \
             adjacency: r_a {} < P {p} cannot cache (drop --cache or serve \
             at full replication)",
            plan.r_a
        ));
    }
    if plan.config.layers() != layers {
        return Err(format!(
            "plan orders {} layers, snapshot has {layers}",
            plan.config.layers()
        ));
    }
    // The cache stores the SpMM-first layer-1 intermediate; on GEMM-first
    // first layers it is inert by design (counters stay zero).
    let cache_active = cfg.cache > 0 && plan.config.forward[0] == Order::SpmmFirst;
    // Requested pipelining that the engine gate will drop anyway (e.g. a
    // single rank, or `r_a = 1` leaving no redistribution group) is
    // surfaced on the report instead of silently serving blocking.
    let overlap_inert = cfg
        .pipeline
        .and_then(|chunks| rdm_core::overlap_inert_reason(chunks, p, plan.r_a, false));

    // The batch schedule and (for the induced sampler) each batch's vertex
    // set are pure functions of the shared inputs — computed once here,
    // read-only inside the cluster.
    let batches = form_batches(requests, &cfg.policy);
    let batch_verts: Vec<Option<Vec<u32>>> = batches
        .iter()
        .map(|b| match cfg.sampler {
            ServeSampler::Full => None,
            ServeSampler::Induced { budget } => {
                let targets: Vec<u32> = b.requests.iter().map(|r| r.target).collect();
                let sub = Subgraph::around(
                    &ds.adj,
                    &targets,
                    budget.min(n),
                    cfg.sample_seed ^ b.idx as u64,
                );
                Some(sub.vertices)
            }
        })
        .collect();

    let cluster = match cfg.faults {
        Some(fp) => Cluster::with_faults(p, fp),
        None => Cluster::new(p),
    };
    let cluster = if cfg.trace { cluster.traced() } else { cluster };

    let out = cluster.run(|ctx| {
        // Rank threads are fresh per session: pin the kernel path first.
        kernels::set_mode(cfg.kernels);
        let weights = snap.to_weights();
        let ospec = cfg.pipeline.map(|chunks| OverlapSpec {
            chunks,
            device: cfg.device,
        });
        let mut cache =
            cache_active.then(|| AggCache::new(n, p, ctx.rank(), cfg.cache, ds.features.cols()));
        let mut records: Vec<RankBatchRecord> = Vec::with_capacity(batches.len());
        let mut rows: Vec<(usize, Vec<f32>)> = Vec::new();
        let mut prev_stats = ctx.stats_snapshot();
        // A batch after a directory change re-warms the thinned exchange's
        // buffer shapes; batch 0 is always warmup.
        let mut next_is_warmup = true;
        for (batch, verts) in batches.iter().zip(&batch_verts) {
            // Align batch boundaries so per-batch deltas of the workspace
            // and communication books are attributable to one batch.
            ctx.barrier();
            let ws0 = pool::stats();
            let warmup = next_is_warmup;
            next_is_warmup = false;
            let _bspan = rdm_trace::span(Span::Batch {
                idx: batch.idx,
                size: batch.requests.len(),
            });
            for r in &batch.requests {
                // Admission markers: one Serve span per request, nested in
                // the batch span, so Chrome traces show batch membership.
                let _s = rdm_trace::span(Span::Serve {
                    client: r.client,
                    req_id: r.req_id,
                });
            }
            let mut ops = OpCounters::default();
            let skipped = cache.as_ref().map_or(0, |c| c.cached_total() as u64);
            let (mut hits, mut misses) = (0u64, 0u64);
            match verts {
                None => {
                    let targets: Vec<u32> = batch.requests.iter().map(|r| r.target).collect();
                    let (logits, outcome) = forward_logits_with(
                        ctx,
                        &ds.adj_norm,
                        &ds.features,
                        &weights,
                        &plan,
                        cfg.sparse,
                        ospec.as_ref(),
                        cache.as_mut().map(|c| (c, targets.as_slice())),
                        &mut ops,
                    );
                    if let Some(o) = outcome {
                        (hits, misses) = (o.hits, o.misses);
                        next_is_warmup = o.changed();
                        rdm_trace::record(EventData::AggCache {
                            hits,
                            misses,
                            skipped,
                        });
                    }
                    let range = part_range(n, p, ctx.rank());
                    for r in &batch.requests {
                        let t = r.target as usize;
                        if range.contains(&t) {
                            rows.push((r.idx, logits.local.row(t - range.start).to_vec()));
                        }
                    }
                }
                Some(verts) => {
                    let sub = ds.induced(verts);
                    let (logits, _) = forward_logits_with(
                        ctx,
                        &sub.adj_norm,
                        &sub.features,
                        &weights,
                        &plan,
                        cfg.sparse,
                        ospec.as_ref(),
                        None,
                        &mut ops,
                    );
                    let range = part_range(sub.n(), p, ctx.rank());
                    for r in &batch.requests {
                        let li = verts
                            .binary_search(&r.target)
                            .expect("sampler always includes batch targets");
                        if range.contains(&li) {
                            rows.push((r.idx, logits.local.row(li - range.start).to_vec()));
                        }
                    }
                }
            }
            let ws1 = pool::stats();
            let now = ctx.stats_snapshot();
            let delta = now.delta_since(&prev_stats);
            prev_stats = now;
            records.push(RankBatchRecord {
                ops,
                bytes: delta.total_bytes(),
                msgs: delta.total_messages(),
                ws_fresh: ws1.fresh - ws0.fresh,
                ws_reused: ws1.reused - ws0.reused,
                overlap_ns: delta.overlap_ns,
                hits,
                misses,
                warmup,
            });
        }
        (rows, records)
    });

    // Assemble: every request served exactly once, by the rank owning its
    // target's logits row.
    let mut logits_by_req: Vec<Option<Vec<f32>>> = vec![None; requests.len()];
    for (rows, _) in &out.results {
        for (idx, row) in rows {
            if logits_by_req[*idx].replace(row.clone()).is_some() {
                return Err(format!("request {idx} served more than once"));
            }
        }
    }
    if let Some(miss) = logits_by_req.iter().position(|l| l.is_none()) {
        return Err(format!("request {miss} was never served"));
    }

    // Virtual timeline: service = slowest rank per batch, one batch in
    // flight at a time. The pipeline shortens a batch two ways: within
    // the batch, each rank's recorded overlap time comes off its
    // comm-exposed total; across batches, a batch dispatched while its
    // predecessor still runs can prefetch up to its exposed communication
    // behind that predecessor's compute. With the pipeline off, both
    // terms are zero and the recurrence is the classic blocking one.
    let mut timings: Vec<BatchTiming> = Vec::with_capacity(batches.len());
    let mut prev_completion = 0u64;
    for batch in &batches {
        let mut service_raw = 0.0f64;
        let mut hidden_slowest = 0.0f64;
        let mut exposed_slowest = 0.0f64;
        for (_, recs) in &out.results {
            let r = &recs[batch.idx];
            let comp = cfg.device.compute_time(r.ops.spmm_fma, r.ops.gemm_fma);
            let comm = cfg.device.comm_time(r.bytes as f64, r.msgs as f64);
            let hidden = (r.overlap_ns as f64 / 1.0e9).min(comm);
            let t = comp + comm - hidden;
            if t > service_raw {
                service_raw = t;
                hidden_slowest = hidden;
                exposed_slowest = comm - hidden;
            }
        }
        let service_s = service_raw + cfg.device.epoch_overhead;
        let dispatch_us = batch.close_us.max(prev_completion);
        let prefetch_us = if cfg.pipeline.is_some() && batch.idx > 0 {
            let busy_us = prev_completion.saturating_sub(batch.close_us);
            ((exposed_slowest * 1.0e6).round() as u64).min(busy_us)
        } else {
            0
        };
        let service_us = ((service_s * 1.0e6).round() as u64)
            .saturating_sub(prefetch_us)
            .max(1);
        let completion_us = dispatch_us + service_us;
        prev_completion = completion_us;
        timings.push(BatchTiming {
            idx: batch.idx,
            size: batch.requests.len(),
            close_us: batch.close_us,
            dispatch_us,
            service_us,
            completion_us,
            overlap_us: ((hidden_slowest * 1.0e6).round() as u64) + prefetch_us,
        });
    }

    let mut request_records: Vec<RequestRecord> = Vec::with_capacity(requests.len());
    for batch in &batches {
        let t = &timings[batch.idx];
        for r in &batch.requests {
            request_records.push(RequestRecord {
                idx: r.idx,
                client: r.client,
                req_id: r.req_id,
                target: r.target,
                batch: batch.idx,
                arrival_us: r.arrival_us,
                completion_us: t.completion_us,
                logits: logits_by_req[r.idx].take().expect("assembled above"),
            });
        }
    }
    request_records.sort_by_key(|r| r.idx);

    let mut ws_fresh_warmup = 0;
    let mut ws_fresh_steady = 0;
    let mut ws_reused_steady = 0;
    for (_, recs) in &out.results {
        for r in recs.iter() {
            if r.warmup {
                ws_fresh_warmup += r.ws_fresh;
            } else {
                ws_fresh_steady += r.ws_fresh;
                ws_reused_steady += r.ws_reused;
            }
        }
    }
    // The directory is a shared deterministic simulation: every rank
    // reports identical hit/miss counts, so read one rank's book.
    let (cache_hits, cache_misses) = out
        .results
        .first()
        .map(|(_, recs)| {
            recs.iter()
                .fold((0u64, 0u64), |(h, m), r| (h + r.hits, m + r.misses))
        })
        .unwrap_or((0, 0));

    let mut stats = CommStats::default();
    for s in &out.stats {
        stats.merge(s);
    }
    let report = ServeReport {
        dataset: ds.spec.name.clone(),
        p,
        sparse: cfg.sparse,
        requests: request_records,
        batches: timings,
        ws_fresh_warmup,
        ws_fresh_steady,
        ws_reused_steady,
        payload_bytes: stats.total_bytes(),
        messages: stats.total_messages(),
        retries: stats.retries,
        cache_hits,
        cache_misses,
        overlap_inert,
    };
    Ok(ServeOutput {
        report,
        stats,
        traces: out.traces,
    })
}

/// The batches [`serve`] will execute for this request stream — exposed so
/// harnesses can reconstruct the exact minibatches for reference forwards.
pub fn planned_batches(requests: &[InferRequest], policy: &BatchPolicy) -> Vec<Batch> {
    form_batches(requests, policy)
}

/// The vertex set [`serve`] uses for one batch under the induced sampler —
/// exposed for the same reason.
pub fn planned_vertices(ds: &Dataset, batch: &Batch, budget: usize, sample_seed: u64) -> Vec<u32> {
    let targets: Vec<u32> = batch.requests.iter().map(|r| r.target).collect();
    Subgraph::around(
        &ds.adj,
        &targets,
        budget.min(ds.n()),
        sample_seed ^ batch.idx as u64,
    )
    .vertices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadGen;
    use rdm_comm::CollectiveKind;
    use rdm_core::gcn::GcnWeights;
    use rdm_graph::dataset::DatasetSpec;

    fn setup() -> (Dataset, WeightSnapshot) {
        let ds = DatasetSpec::synthetic("demo", 96, 700, 8, 3).instantiate(1);
        let w = GcnWeights::init(&[8, 8, 3], 7);
        (ds, WeightSnapshot::from_weights(&w))
    }

    #[test]
    fn full_graph_session_serves_every_request_and_replays() {
        let (ds, snap) = setup();
        let reqs = LoadGen::new(11, 3, 50, 24).generate(ds.n());
        let cfg = ServeConfig::new(2);
        let a = serve(&ds, &snap, &reqs, &cfg).unwrap();
        assert_eq!(a.report.requests.len(), 24);
        assert!(!a.report.batches.is_empty());
        assert!(a.report.requests.iter().all(|r| r.logits.len() == 3));
        assert!(a
            .report
            .requests
            .iter()
            .all(|r| r.completion_us > r.arrival_us));
        let b = serve(&ds, &snap, &reqs, &cfg).unwrap();
        assert_eq!(a.report, b.report, "replay diverged");
        assert_eq!(a.report.render(), b.report.render());
    }

    #[test]
    fn induced_sampler_is_alloc_free_after_warmup() {
        let (ds, snap) = setup();
        let reqs = LoadGen::new(5, 2, 20, 64).generate(ds.n());
        let mut cfg = ServeConfig::new(2);
        cfg.sampler = ServeSampler::Induced { budget: 48 };
        let out = serve(&ds, &snap, &reqs, &cfg).unwrap();
        assert!(out.report.batches.len() >= 4, "want several steady batches");
        assert!(out.report.ws_fresh_warmup > 0, "warmup must allocate");
        assert_eq!(
            out.report.ws_fresh_steady, 0,
            "steady-state batches allocated fresh workspaces"
        );
        assert!(out.report.ws_reused_steady > 0);
    }

    #[test]
    fn completions_respect_per_client_request_order() {
        let (ds, snap) = setup();
        let reqs = LoadGen::new(23, 4, 10, 80).generate(ds.n());
        let cfg = ServeConfig::new(2);
        let out = serve(&ds, &snap, &reqs, &cfg).unwrap();
        let mut last: Vec<Option<(u64, u64)>> = vec![None; 4];
        let mut by_completion: Vec<&RequestRecord> = out.report.requests.iter().collect();
        by_completion.sort_by_key(|r| (r.completion_us, r.batch, r.idx));
        for r in by_completion {
            if let Some((prev_id, prev_done)) = last[r.client] {
                assert!(
                    r.req_id > prev_id,
                    "client {} completed out of order",
                    r.client
                );
                assert!(r.completion_us >= prev_done);
            }
            last[r.client] = Some((r.req_id, r.completion_us));
        }
    }

    #[test]
    fn misconfigured_sessions_error_instead_of_panicking() {
        let (ds, snap) = setup();
        let reqs = LoadGen::new(1, 1, 10, 4).generate(ds.n());
        // Wrong input width.
        let bad = WeightSnapshot::from_weights(&GcnWeights::init(&[9, 8, 3], 7));
        assert!(serve(&ds, &bad, &reqs, &ServeConfig::new(2)).is_err());
        // Wrong class count.
        let bad = WeightSnapshot::from_weights(&GcnWeights::init(&[8, 8, 4], 7));
        assert!(serve(&ds, &bad, &reqs, &ServeConfig::new(2)).is_err());
        // A replication factor that does not divide P.
        let mut cfg = ServeConfig::new(4);
        cfg.plan = Some(Plan::from_id(0, 2, 4).with_ra(3));
        assert!(serve(&ds, &snap, &reqs, &cfg).is_err());
        let mut cfg = ServeConfig::new(4);
        cfg.ra = Some(3);
        assert!(serve(&ds, &snap, &reqs, &cfg).is_err());
        // An explicit plan conflicting with the configured factor.
        let mut cfg = ServeConfig::new(4);
        cfg.plan = Some(Plan::from_id(0, 2, 4));
        cfg.ra = Some(2);
        assert!(serve(&ds, &snap, &reqs, &cfg).is_err());
        // The aggregation cache indexes the fully replicated adjacency.
        let mut cfg = ServeConfig::new(4);
        cfg.ra = Some(2);
        cfg.cache = 8;
        assert!(serve(&ds, &snap, &reqs, &cfg).is_err());
        // Budget below a full batch.
        let mut cfg = ServeConfig::new(2);
        cfg.sampler = ServeSampler::Induced { budget: 4 };
        cfg.policy = BatchPolicy::new(16, 1_000);
        assert!(serve(&ds, &snap, &reqs, &cfg).is_err());
        // Target outside the graph.
        let mut stray = reqs.clone();
        stray[0].target = ds.n() as u32;
        assert!(serve(&ds, &snap, &stray, &ServeConfig::new(2)).is_err());
        // Pipelining needs at least two strips.
        let mut cfg = ServeConfig::new(2);
        cfg.pipeline = Some(1);
        assert!(serve(&ds, &snap, &reqs, &cfg).is_err());
        // The aggregation cache requires the full-graph sampler.
        let mut cfg = ServeConfig::new(2);
        cfg.sampler = ServeSampler::Induced { budget: 48 };
        cfg.cache = 8;
        assert!(serve(&ds, &snap, &reqs, &cfg).is_err());
    }

    /// Pipelined admission must keep logits bitwise identical while the
    /// hidden communication time lands in the nanosecond-resolution comm
    /// book and the timeline keeps its queueing invariants. (Whether the
    /// pipeline *wins* depends on shape — chunking pays a per-message
    /// latency toll — so the p99 victory is asserted by the serving bench
    /// on a realistic shape, not here on a toy graph.)
    #[test]
    fn pipelined_session_is_bitwise_and_hides_communication() {
        let (ds, snap) = setup();
        let reqs = LoadGen::new(31, 3, 20, 48).generate(ds.n());
        let base = serve(&ds, &snap, &reqs, &ServeConfig::new(2)).unwrap();
        let piped = serve(&ds, &snap, &reqs, &ServeConfig::new(2).pipelined(3)).unwrap();
        for (a, b) in base.report.requests.iter().zip(&piped.report.requests) {
            assert_eq!(a.logits, b.logits, "pipelining changed request {}", a.idx);
        }
        assert!(piped.stats.overlap_ns > 0, "pipeline hid no communication");
        assert_eq!(base.stats.overlap_ns, 0);
        assert_eq!(base.report.overlap_us_total(), 0);
        let mut prev_done = 0;
        for t in &piped.report.batches {
            assert_eq!(t.dispatch_us, t.close_us.max(prev_done));
            assert_eq!(t.completion_us, t.dispatch_us + t.service_us);
            assert!(t.service_us >= 1);
            prev_done = t.completion_us;
        }
        // Replays stay byte-identical with the pipeline on.
        let again = serve(&ds, &snap, &reqs, &ServeConfig::new(2).pipelined(3)).unwrap();
        assert_eq!(piped.report, again.report);
    }

    /// Repeating targets against a cached session: batch 0 fills the
    /// directory (misses), every later batch hits; logits stay bitwise
    /// identical, hits thin the redistribution payload, and once the
    /// directory stops changing the steady-state batches are alloc-free.
    #[test]
    fn cached_session_hits_and_stays_bitwise_and_alloc_free() {
        let (ds, snap) = setup();
        let targets = [5u32, 12, 33, 47];
        let reqs: Vec<InferRequest> = (0..16)
            .map(|i| InferRequest {
                idx: i,
                client: 0,
                req_id: i as u64,
                target: targets[i % 4],
                arrival_us: (i as u64 + 1) * 10,
            })
            .collect();
        let mut cfg = ServeConfig::new(2);
        cfg.policy = BatchPolicy::new(4, 10_000);
        // Pin a plan whose first layer is SpMM-first — the cacheable shape.
        cfg.plan = Some(Plan::from_id(5, 2, 2));
        let base = serve(&ds, &snap, &reqs, &cfg).unwrap();
        let mut ccfg = cfg.clone();
        ccfg.cache = 8;
        let cached = serve(&ds, &snap, &reqs, &ccfg).unwrap();
        for (a, b) in base.report.requests.iter().zip(&cached.report.requests) {
            assert_eq!(a.logits, b.logits, "cache changed request {}", a.idx);
        }
        // 4 batches of 4: the first all-new, the rest all-repeat.
        assert_eq!(cached.report.cache_misses, 4);
        assert_eq!(cached.report.cache_hits, 12);
        assert_eq!(
            cached.report.ws_fresh_steady, 0,
            "cache-stable batches must be alloc-free"
        );
        let wire = |o: &ServeOutput| o.stats.bytes(CollectiveKind::Redistribute);
        assert!(
            wire(&cached) < wire(&base),
            "hits must thin the exchange: {} !< {}",
            wire(&cached),
            wire(&base)
        );
    }

    /// On a plan whose first layer runs GEMM before SpMM there is no
    /// reusable layer-0 aggregation, so the cache stays inert: zero
    /// counters, identical logits, identical wire volume.
    #[test]
    fn gemm_first_plans_keep_the_cache_inert() {
        let (ds, snap) = setup();
        let reqs = LoadGen::new(13, 2, 20, 24).generate(ds.n());
        let mut cfg = ServeConfig::new(2);
        cfg.plan = Some(Plan::from_id(2, 2, 2));
        let base = serve(&ds, &snap, &reqs, &cfg).unwrap();
        let mut ccfg = cfg.clone();
        ccfg.cache = 16;
        let out = serve(&ds, &snap, &reqs, &ccfg).unwrap();
        assert_eq!(out.report.cache_hits, 0);
        assert_eq!(out.report.cache_misses, 0);
        assert_eq!(
            out.stats.bytes(CollectiveKind::Redistribute),
            base.stats.bytes(CollectiveKind::Redistribute)
        );
        for (a, b) in base.report.requests.iter().zip(&out.report.requests) {
            assert_eq!(a.logits, b.logits);
        }
    }

    /// Serving from a replicated-panel plan (`r_a < p`) must produce
    /// bitwise-identical logits to the fully replicated session — across
    /// the dense wire, the sparse wire and pipelined admission — while
    /// group redistributions plus dense panel broadcasts replace the
    /// full-replication exchange on the wire.
    #[test]
    fn replicated_panel_sessions_are_bitwise_full_replication() {
        let (ds, snap) = setup();
        let reqs = LoadGen::new(17, 3, 25, 32).generate(ds.n());
        let base = {
            let mut cfg = ServeConfig::new(4);
            cfg.plan = Some(Plan::from_id(10, 2, 4));
            serve(&ds, &snap, &reqs, &cfg).unwrap()
        };
        for (sparse, pipeline) in [(false, None), (true, None), (true, Some(3))] {
            let mut cfg = ServeConfig::new(4);
            cfg.plan = Some(Plan::from_id(10, 2, 4).with_ra(2));
            cfg.sparse = sparse;
            cfg.pipeline = pipeline;
            let out = serve(&ds, &snap, &reqs, &cfg).unwrap();
            for (a, b) in base.report.requests.iter().zip(&out.report.requests) {
                assert_eq!(
                    a.logits, b.logits,
                    "r_a=2 sparse={sparse} pipeline={pipeline:?} drifted on request {}",
                    a.idx
                );
            }
            assert!(
                out.stats.bytes(CollectiveKind::Broadcast) > 0,
                "replicated panels must broadcast tiles"
            );
            assert!(out.report.overlap_inert_reason().is_none());
            if pipeline.is_some() {
                assert!(out.stats.overlap_ns > 0, "pipeline hid nothing at r_a=2");
            }
        }
        // A one-panel-column grid (r_a = 1) has no redistribution group to
        // pipeline: the session still serves correct logits but reports the
        // requested pipeline as inert.
        let mut cfg = ServeConfig::new(4);
        cfg.ra = Some(1);
        cfg.plan = Some(Plan::from_id(10, 2, 4).with_ra(1));
        cfg.pipeline = Some(3);
        let out = serve(&ds, &snap, &reqs, &cfg).unwrap();
        for (a, b) in base.report.requests.iter().zip(&out.report.requests) {
            assert_eq!(a.logits, b.logits, "r_a=1 drifted on request {}", a.idx);
        }
        assert_eq!(
            out.report.overlap_inert_reason(),
            Some("r_a = 1 leaves no redistribution group to pipeline")
        );
        assert!(out.report.render().contains("overlap     inert (r_a = 1"));
    }

    #[test]
    fn batch_timeline_obeys_the_queueing_recurrence() {
        let (ds, snap) = setup();
        let reqs = LoadGen::new(2, 2, 5, 60).generate(ds.n());
        let cfg = ServeConfig::new(2);
        let out = serve(&ds, &snap, &reqs, &cfg).unwrap();
        let mut prev_done = 0;
        for t in &out.report.batches {
            assert_eq!(t.dispatch_us, t.close_us.max(prev_done));
            assert_eq!(t.completion_us, t.dispatch_us + t.service_us);
            assert!(t.service_us >= 1);
            prev_done = t.completion_us;
        }
    }
}
