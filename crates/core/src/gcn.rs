//! The RDM GCN engine: forward and backward passes that execute any
//! SpMM/GEMM ordering (Table IV configuration) with communication-free
//! products and explicit redistributions, on any adjacency replication
//! factor `R_A` (Fig. 6 topology; `R_A = P` is full replication).
//!
//! The engine charges *exactly* the redistributions of §IV-A because layout
//! conversions happen lazily through [`FormCache`]: an access that the plan
//! made free (the needed layout already exists) moves no bytes, and an
//! access the model prices (mismatched adjacent orders, intra-layer
//! conversion, loss boundary, non-memoized weight gradient) triggers one
//! group all-to-all tagged [`CollectiveKind::Redistribute`]. Under
//! `R_A < P` the SpMM itself additionally broadcasts inside column groups
//! (tagged `Broadcast`), per Table II's `R_A < P` rows.
//!
//! Two small traffic classes exist that Table IV ignores; both are tagged
//! differently so measured `Redistribute` bytes stay model-exact:
//!
//! * weight-gradient ring all-reduces (`f_{l-1} × f_l`, tagged
//!   `AllReduce`);
//! * ReLU-mask alignment in configurations where the gradient and the
//!   saved activation exist only in opposite layouts (tagged `Other`).

use crate::aggcache::AggCache;
use crate::dist::{Dist, DistMat, FormCache};
use crate::ops::{dist_gemm, dist_gemm_nt, weight_grad, OpCounters, Topology};
use crate::plan::Plan;
use rdm_comm::{ChunkAxis, CollectiveKind, RankCtx};
use rdm_dense::{gemm, gemm_nt, hstack, part_range, relu, relu_backward, vstack, Mat};
use rdm_model::{AdmitOutcome, DeviceModel, Order};
use rdm_trace::{Form, Span};

/// Settings of the pipelined (overlapped) execution path, threaded through
/// [`rdm_forward_with`] / [`rdm_backward_with`].
///
/// When active, every Row↔Col redistribution that feeds a distributed
/// SpMM or GEMM is issued as `chunks` strips
/// ([`DistMat::redistribute_overlapped`]) and the kernel runs strip by
/// strip, consuming chunk `q` while chunks `q+1..` are in flight. Both
/// kernels are strip-separable (SpMM per output column, GEMM per output
/// row), so results are **bit-identical** to the blocking path, as are the
/// payload-byte counters; the win is modeled by `device` and recorded as
/// `CommStats::overlap_ns`.
#[derive(Clone, Copy, Debug)]
pub struct OverlapSpec {
    /// Pipeline depth: how many strips each redistribution splits into.
    pub chunks: usize,
    /// Device model pricing the hidden communication time.
    pub device: DeviceModel,
}

impl OverlapSpec {
    /// An overlap spec with the paper's device model.
    pub fn new(chunks: usize) -> Self {
        OverlapSpec {
            chunks,
            device: DeviceModel::a6000_pcie(),
        }
    }
}

/// Why a user-requested [`OverlapSpec`] would be inert on this execution
/// shape, or `None` when the pipelined path runs. The reasons mirror
/// `overlap_active`'s gate exactly so reports can explain a silently
/// blocking run: no pipeline depth (`chunks < 2`), nothing to overlap
/// (single rank, or `r_a = 1` where the redistribution group is this rank
/// alone), or the masked SpMM kernel (which assembles its column slice
/// inline and cannot stream strips).
pub fn overlap_inert_reason(
    chunks: usize,
    p: usize,
    r_a: usize,
    masked: bool,
) -> Option<&'static str> {
    if chunks < 2 {
        Some("chunks < 2")
    } else if p < 2 {
        Some("single rank")
    } else if masked {
        Some("edge mask")
    } else if r_a < 2 {
        Some("r_a = 1 leaves no redistribution group to pipeline")
    } else {
        None
    }
}

/// The pipelined path replaces a blocking redistribution only when there
/// is a pipeline to run (`chunks > 1`, more than one rank, a
/// redistribution group wider than this rank alone — `r_a > 1`; under
/// `R_A < P` the chunked all-to-all runs inside the row group and the
/// panel broadcast is issued strip by strip) without an edge mask.
fn overlap_active<'s>(
    overlap: Option<&'s OverlapSpec>,
    ctx: &RankCtx,
    topo: &Topology,
) -> Option<&'s OverlapSpec> {
    overlap.filter(|o| {
        overlap_inert_reason(o.chunks, ctx.size(), topo.grid.r_a, topo.mask.is_some()).is_none()
    })
}

/// Modeled per-chunk send-side communication seconds of this rank's share
/// of a chunked **group** redistribution of its `rows_l × cols_l` local
/// block (split along columns for Row→Col, along rows for Col→Row) across
/// the `g` members of its row group, plus — on the SpMM path under
/// `R_A < P` — the per-strip panel-broadcast sends (`bcast_peers` copies
/// of this rank's `bcast_rows × strip` tile strip). Send-side bytes are
/// symmetric across ranks for balanced slicings, so this is the per-rank
/// link time the device model would charge the blocking exchange, divided
/// over the chunks exactly as the bytes are.
#[allow(clippy::too_many_arguments)]
fn chunk_comm_times(
    spec: &OverlapSpec,
    g: usize,
    my_idx: usize,
    rows_l: usize,
    cols_l: usize,
    split_cols: bool,
    bcast_peers: usize,
    bcast_rows: usize,
) -> Vec<f64> {
    let (peer_dim, fixed) = if split_cols {
        (cols_l, rows_l)
    } else {
        (rows_l, cols_l)
    };
    // My strip of the *destination* tile: what the panel broadcast ships.
    let my_dim = part_range(peer_dim, g, my_idx).len();
    (0..spec.chunks)
        .map(|q| {
            let mut elems = 0usize;
            for j in 0..g {
                if j == my_idx {
                    continue;
                }
                let peer = part_range(peer_dim, g, j);
                elems += part_range(peer.len(), spec.chunks, q).len() * fixed;
            }
            let mut t = spec.device.comm_time(elems as f64 * 4.0, (g - 1) as f64);
            if bcast_peers > 0 {
                let strip = part_range(my_dim, spec.chunks, q).len();
                let b = bcast_peers * bcast_rows * strip;
                t += spec.device.comm_time(b as f64 * 4.0, bcast_peers as f64);
            }
            t
        })
        .collect()
}

/// Account the modeled comm time this pipeline hid behind compute.
fn record_hidden(ctx: &RankCtx, spec: &OverlapSpec, comm_s: &[f64], comp_s: &[f64]) {
    let hidden = spec.device.hidden_time(comm_s, comp_s);
    ctx.record_overlap((hidden * 1e9) as u64);
}

/// `Â·(tile form of cache)` — the aggregation fed by a Row→Col
/// redistribution. With `overlap` active and the tile form missing, the
/// redistribution is chunk-pipelined and the SpMM runs strip by strip;
/// SpMM output columns are independent, so the result is bit-identical to
/// the blocking path. The freshly built tile form lands in `cache` either
/// way (mirroring `require_col`).
fn spmm_via_col(
    ctx: &RankCtx,
    topo: &Topology,
    cache: &mut FormCache,
    bwd: bool,
    overlap: Option<&OverlapSpec>,
    ops: &mut OpCounters,
) -> DistMat {
    let spec = match overlap_active(overlap, ctx, topo) {
        Some(s) if !cache.has_col() => s,
        _ => {
            let tile = cache
                .require_col(topo, ctx, CollectiveKind::Redistribute)
                .clone();
            return if bwd {
                topo.spmm_bwd(&tile, ctx, ops)
            } else {
                topo.spmm(&tile, ctx, ops)
            };
        }
    };
    let panel = if bwd {
        topo.panel_t.as_ref().unwrap_or(&topo.panel)
    } else {
        &topo.panel
    };
    let row = cache.row.as_ref().expect("cache holds a layout").clone();
    let group = topo.grid.row_group(ctx.rank());
    let col_group = topo.grid.col_group(ctx.rank());
    let bcast_peers = col_group.len() - 1;
    let comm_s = chunk_comm_times(
        spec,
        group.len(),
        ctx.rank() % topo.grid.r_a,
        row.local.rows(),
        row.local.cols(),
        true,
        bcast_peers,
        topo.tile_rows(ctx.rank()).len(),
    );
    let mut comp_s = Vec::with_capacity(spec.chunks);
    let mut strips: Vec<Mat> = Vec::with_capacity(spec.chunks);
    let on_strip = |q: usize, strip: &Mat| {
        // Under `R_A < P` the strip is this rank's *tile* strip (panel
        // rows × chunk of its column slice); assemble the full rows of
        // those columns by broadcasting inside the column group (Fig. 6),
        // strip by strip instead of once per product. Column groups share
        // the grid column index, so their strip boundaries agree and the
        // stacked strips equal the blocking assembly bitwise.
        let full;
        let slice: &Mat = if bcast_peers == 0 {
            strip
        } else {
            let mut parts: Vec<Mat> = Vec::with_capacity(col_group.len());
            for &root in &col_group {
                let payload = (root == ctx.rank()).then(|| strip.clone());
                parts.push(ctx.group_broadcast(
                    &col_group,
                    root,
                    payload,
                    CollectiveKind::Broadcast,
                ));
            }
            full = vstack(&parts);
            &full
        };
        strips.push(rdm_sparse::spmm(panel, slice));
        let fma = panel.nnz() as f64 * slice.cols() as f64;
        ops.spmm_fma += fma;
        comp_s.push(spec.device.compute_time(fma, 0.0));
        record_strip(spec, q, &comm_s, &comp_s);
    };
    let col = if topo.sparse {
        row.redistribute_overlapped_grouped_sparse(
            ctx,
            &group,
            Dist::Col,
            CollectiveKind::Redistribute,
            spec.chunks,
            on_strip,
        )
    } else {
        row.redistribute_overlapped_grouped(
            ctx,
            &group,
            Dist::Col,
            CollectiveKind::Redistribute,
            spec.chunks,
            on_strip,
        )
    }
    .expect("Row->Col is always pipelined");
    record_hidden(ctx, spec, &comm_s, &comp_s);
    let out = DistMat {
        dist: Dist::Col,
        rows: topo.n,
        cols: col.cols,
        local: hstack(&strips),
    };
    // An aggregate kernel span equal to the blocking path's, so the traced
    // schedule is identical whether or not the pipeline ran (the per-strip
    // work already appeared as OverlapStrip instants inside the
    // redistribution span).
    drop(rdm_trace::span(Span::Spmm {
        rows: panel.rows(),
        cols: out.local.cols(),
        nnz: panel.nnz(),
        width: rdm_dense::kernels::active_width(),
    }));
    cache.put(col);
    out
}

/// Emit one `OverlapStrip` instant for pipeline strip `q`: the modeled
/// time this strip's compute can hide of the *next* strip's communication
/// (zero for the last strip — nothing is left in flight behind it).
fn record_strip(spec: &OverlapSpec, q: usize, comm_s: &[f64], comp_s: &[f64]) {
    if !rdm_trace::enabled() {
        return;
    }
    let hidden = if q + 1 < spec.chunks {
        comp_s[q].min(comm_s[q + 1])
    } else {
        0.0
    };
    rdm_trace::record(rdm_trace::EventData::OverlapStrip {
        idx: q,
        hidden_ns: (hidden * 1e9) as u64,
    });
}

/// `(row form of cache)·W` (or `·Wᵀ`) — the dense product fed by a
/// Col→Row redistribution. With `overlap` active and the row form missing,
/// strips of the incoming row slice are multiplied while later strips are
/// in flight; GEMM output rows are independent, so the result is
/// bit-identical. The row form lands in `cache` either way (mirroring
/// `require_row`) — the memoization and weight-gradient reuse paths read
/// it from there.
fn gemm_via_row(
    ctx: &RankCtx,
    topo: &Topology,
    cache: &mut FormCache,
    w: &Mat,
    transpose_w: bool,
    overlap: Option<&OverlapSpec>,
    ops: &mut OpCounters,
) -> DistMat {
    let spec = match overlap_active(overlap, ctx, topo) {
        Some(s) if !cache.has_row() => s,
        _ => {
            let row = cache
                .require_row(topo, ctx, CollectiveKind::Redistribute)
                .clone();
            return if transpose_w {
                dist_gemm_nt(&row, w, ops)
            } else {
                dist_gemm(&row, w, ops)
            };
        }
    };
    let col = cache.col.as_ref().expect("cache holds a layout").clone();
    let group = topo.grid.row_group(ctx.rank());
    let comm_s = chunk_comm_times(
        spec,
        group.len(),
        ctx.rank() % topo.grid.r_a,
        col.local.rows(),
        col.local.cols(),
        false,
        0,
        0,
    );
    let mut comp_s = Vec::with_capacity(spec.chunks);
    let mut strips: Vec<Mat> = Vec::with_capacity(spec.chunks);
    let on_strip = |q: usize, strip: &Mat| {
        strips.push(if transpose_w {
            gemm_nt(strip, w)
        } else {
            gemm(strip, w)
        });
        let fma = strip.rows() as f64 * w.rows() as f64 * w.cols() as f64;
        ops.gemm_fma += fma;
        comp_s.push(spec.device.compute_time(0.0, fma));
        record_strip(spec, q, &comm_s, &comp_s);
    };
    let row = if topo.sparse {
        col.redistribute_overlapped_grouped_sparse(
            ctx,
            &group,
            Dist::Row,
            CollectiveKind::Redistribute,
            spec.chunks,
            on_strip,
        )
    } else {
        col.redistribute_overlapped_grouped(
            ctx,
            &group,
            Dist::Row,
            CollectiveKind::Redistribute,
            spec.chunks,
            on_strip,
        )
    }
    .expect("Col->Row is always pipelined");
    record_hidden(ctx, spec, &comm_s, &comp_s);
    let out = DistMat {
        dist: Dist::Row,
        rows: col.rows,
        cols: if transpose_w { w.rows() } else { w.cols() },
        local: vstack(&strips),
    };
    // Aggregate kernel span mirroring the blocking `dist_gemm{,_nt}` span.
    drop(rdm_trace::span(Span::Gemm {
        m: out.local.rows(),
        n: if transpose_w { w.rows() } else { w.cols() },
        k: if transpose_w { w.cols() } else { w.rows() },
        width: rdm_dense::kernels::active_width(),
    }));
    cache.put(row);
    out
}

/// Replicated GCN weights, `w[l-1]` has shape `feats[l-1] × feats[l]`.
#[derive(Clone, Debug)]
pub struct GcnWeights {
    pub w: Vec<Mat>,
}

impl GcnWeights {
    /// Glorot-initialized weights, identical on every rank for a given
    /// seed.
    pub fn init(feats: &[usize], seed: u64) -> Self {
        let w = feats
            .windows(2)
            .enumerate()
            .map(|(l, pair)| Mat::glorot(pair[0], pair[1], seed.wrapping_add(l as u64)))
            .collect();
        GcnWeights { w }
    }

    /// Layer count.
    pub fn layers(&self) -> usize {
        self.w.len()
    }

    /// The `(rows, cols)` of every weight (for optimizer state).
    pub fn shapes(&self) -> Vec<(usize, usize)> {
        self.w.iter().map(|m| m.shape()).collect()
    }
}

/// Everything the forward pass leaves behind for the backward pass.
pub struct ForwardArtifacts {
    /// `h[0]` is the input feature cache; `h[l]` the (activated) output of
    /// layer `l`; `h[L]` holds the raw logits.
    pub h: Vec<FormCache>,
    /// Per layer, the forward SpMM intermediate `Â·H^{l-1}` when the layer
    /// ran SpMM-first *and* the plan memoizes — the reuse of §III-C. Its
    /// row form always exists (the intra-layer redistribution produced
    /// it).
    pub t_fwd: Vec<Option<FormCache>>,
}

impl ForwardArtifacts {
    /// The logits as a row-sliced matrix, redistributing if the last layer
    /// produced them tile-sliced (the loss boundary of §IV-A.1).
    pub fn logits_row(&mut self, topo: &Topology, ctx: &RankCtx) -> DistMat {
        let last = self.h.len() - 1;
        self.h[last]
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone()
    }
}

fn activate(mut z: DistMat, apply: bool) -> DistMat {
    if apply {
        z.local = relu(&z.local);
    }
    z
}

/// Run the forward pass of eq. (1)–(2) under `plan`.
///
/// `input` must hold *both* layouts of `H^0` (the initial distribution is
/// free — data is loaded wherever the plan wants it, §IV-B).
pub fn rdm_forward(
    ctx: &RankCtx,
    topo: &Topology,
    input: FormCache,
    weights: &GcnWeights,
    plan: &Plan,
    ops: &mut OpCounters,
) -> ForwardArtifacts {
    rdm_forward_with(ctx, topo, input, weights, plan, None, ops)
}

/// [`rdm_forward`] with an optional pipelined-redistribution spec. With
/// `overlap = None` (or when [`OverlapSpec`] does not apply to this
/// topology) the execution is the classic blocking schedule; results and
/// payload bytes are identical either way.
#[allow(clippy::too_many_arguments)]
pub fn rdm_forward_with(
    ctx: &RankCtx,
    topo: &Topology,
    input: FormCache,
    weights: &GcnWeights,
    plan: &Plan,
    overlap: Option<&OverlapSpec>,
    ops: &mut OpCounters,
) -> ForwardArtifacts {
    let layers = plan.config.layers();
    assert_eq!(weights.layers(), layers, "weight/plan layer mismatch");
    assert_eq!(
        plan.r_a, topo.grid.r_a,
        "plan replication factor does not match the topology"
    );
    let mut h: Vec<FormCache> = Vec::with_capacity(layers + 1);
    h.push(input);
    let mut t_fwd: Vec<Option<FormCache>> = (0..layers).map(|_| None).collect();
    for l in 1..=layers {
        let (out, tf) = forward_layer(
            ctx,
            topo,
            &mut h[l - 1],
            &weights.w[l - 1],
            plan.config.forward[l - 1],
            plan.memoize,
            l == layers,
            overlap,
            ops,
        );
        h.push(out);
        t_fwd[l - 1] = tf;
    }
    ForwardArtifacts { h, t_fwd }
}

/// One forward layer under either ordering: the loop body of
/// [`rdm_forward_with`], shared with the cached serving forward (which
/// replaces only layer 1).
#[allow(clippy::too_many_arguments)]
fn forward_layer(
    ctx: &RankCtx,
    topo: &Topology,
    h_prev: &mut FormCache,
    w: &Mat,
    order: Order,
    memoize: bool,
    is_last: bool,
    overlap: Option<&OverlapSpec>,
    ops: &mut OpCounters,
) -> (FormCache, Option<FormCache>) {
    match order {
        Order::SpmmFirst => {
            // T = Â·H^{l-1} (needs the tile layout), then Z = T·W
            // (needs row slices): one intra-layer redistribution of
            // width f_{l-1}. Under `overlap` each redistribution is
            // chunk-pipelined into its kernel.
            let t = spmm_via_col(ctx, topo, h_prev, false, overlap, ops);
            let mut tc = FormCache::of_col(t);
            let z = gemm_via_row(ctx, topo, &mut tc, w, false, overlap, ops);
            (
                FormCache::of_row(activate(z, !is_last)),
                memoize.then_some(tc),
            )
        }
        Order::GemmFirst => {
            // T = H^{l-1}·W (row slices), then Z = Â·T (tile layout):
            // one redistribution of width f_l.
            let t = gemm_via_row(ctx, topo, h_prev, w, false, overlap, ops);
            let mut ttc = FormCache::of_row(t);
            let z = spmm_via_col(ctx, topo, &mut ttc, false, overlap, ops);
            (FormCache::of_col(activate(z, !is_last)), None)
        }
    }
}

/// Layer-1 `T = Â·H⁰` under the frozen-weight aggregation cache: skip the
/// cached rows of the SpMM, ship only uncached rows in the intra-layer
/// Col→Row exchange, and splice the owners' cached full-width rows back
/// into the assembled row slice. Bitwise identical to the uncached layer
/// (cached rows were copied out of an identical exchange when admitted);
/// only the `Redistribute` payload shrinks. The kernel span keeps the
/// full panel shape and the exchange stays a single `Col→Row` frame, so
/// the traced schedule differs from the uncached one *only* in exchange
/// bytes — exactly what `rdm-model`'s serving predictor prices.
fn spmm_layer1_cached(
    ctx: &RankCtx,
    topo: &Topology,
    input: &mut FormCache,
    cache: &AggCache,
    ops: &mut OpCounters,
) -> DistMat {
    assert_eq!(
        topo.grid.r_a,
        ctx.size(),
        "the aggregation cache needs full adjacency replication"
    );
    assert!(
        topo.mask.is_none(),
        "the aggregation cache cannot run under an edge mask"
    );
    let tile = input
        .require_col(topo, ctx, CollectiveKind::Redistribute)
        .clone();
    let (n, p, me) = (topo.n, ctx.size(), ctx.rank());
    let f = tile.cols;
    let mask = cache.mask();
    // Aggregate only the uncached rows. The span keeps the blocking
    // path's full shape: the schedule is cache-independent, the work is
    // not.
    let t_local = {
        let _span = rdm_trace::span(Span::Spmm {
            rows: topo.panel.rows(),
            cols: tile.local.cols(),
            nnz: topo.panel.nnz(),
            width: rdm_dense::kernels::active_width(),
        });
        rdm_sparse::spmm_skip(&topo.panel, &tile.local, mask)
    };
    let indptr = topo.panel.indptr();
    let live_nnz: usize = (0..n)
        .filter(|&r| !mask[r])
        .map(|r| indptr[r + 1] - indptr[r])
        .sum();
    ops.spmm_fma += live_nnz as f64 * tile.local.cols() as f64;
    // Col→Row exchange thinned to the uncached rows of every
    // destination's slice (the blocking `redistribute_v_to_h` with the
    // cached rows cut out of each piece — including this rank's own, so
    // the sparse wire path sees matching piece heights).
    let parts: Vec<Mat> = (0..p)
        .map(|j| {
            let rj = part_range(n, p, j);
            let live: Vec<usize> = rj.filter(|&r| !mask[r]).collect();
            let mut piece = Mat::zeros(live.len(), tile.local.cols());
            for (i, &r) in live.iter().enumerate() {
                piece.row_mut(i).copy_from_slice(t_local.row(r));
            }
            piece
        })
        .collect();
    let received = {
        let _span = rdm_trace::span(Span::Redistribute {
            from: Form::Col,
            to: Form::Row,
            chunks: 1,
            kind: CollectiveKind::Redistribute.trace_tag(),
        });
        if topo.sparse {
            ctx.all_to_all_sparse(parts, ChunkAxis::Rows, CollectiveKind::Redistribute)
        } else {
            ctx.all_to_all(parts, CollectiveKind::Redistribute)
        }
    };
    // Assemble this rank's full-width row slice: cached rows from the
    // cache, live rows from the received column pieces in order.
    let my_rows = part_range(n, p, me);
    let mut out = Mat::zeros(my_rows.len(), f);
    let mut cursor = 0usize;
    for r in my_rows.clone() {
        let i = r - my_rows.start;
        if mask[r] {
            out.row_mut(i).copy_from_slice(cache.row(r as u32));
        } else {
            for (j, piece) in received.iter().enumerate() {
                let cj = part_range(f, p, j);
                out.row_mut(i)[cj].copy_from_slice(piece.row(cursor));
            }
            cursor += 1;
        }
    }
    DistMat::from_row_slice(out, n)
}

/// [`rdm_forward_with`] under the serving aggregation cache: layer 1 runs
/// the cached SpMM and thinned exchange (`spmm_layer1_cached`) and then
/// admits the batch's request `targets` (copying freshly exchanged rows
/// into the cache — fills happen *after* the batch that missed, so cached
/// rows are bitwise recomputation). Layers 2+ run the shared layer body,
/// pipelined under `overlap` as usual; layer 1 itself stays blocking (its
/// exchange is the one the cache thins).
///
/// # Panics
/// If the first layer is not SpMM-first (the cache stores the layer-1
/// SpMM intermediate; callers gate `GemmFirst` plans off), or the
/// topology is not fully replicated/unmasked.
#[allow(clippy::too_many_arguments)]
pub fn rdm_forward_cached(
    ctx: &RankCtx,
    topo: &Topology,
    input: FormCache,
    weights: &GcnWeights,
    plan: &Plan,
    overlap: Option<&OverlapSpec>,
    cache: &mut AggCache,
    targets: &[u32],
    ops: &mut OpCounters,
) -> (ForwardArtifacts, AdmitOutcome) {
    let layers = plan.config.layers();
    assert_eq!(weights.layers(), layers, "weight/plan layer mismatch");
    assert_eq!(
        plan.r_a, topo.grid.r_a,
        "plan replication factor does not match the topology"
    );
    assert_eq!(
        plan.config.forward[0],
        Order::SpmmFirst,
        "the aggregation cache stores the SpMM-first layer-1 intermediate"
    );
    let mut h: Vec<FormCache> = Vec::with_capacity(layers + 1);
    h.push(input);
    let mut t_fwd: Vec<Option<FormCache>> = (0..layers).map(|_| None).collect();
    let t_row = spmm_layer1_cached(ctx, topo, &mut h[0], cache, ops);
    let outcome = cache.admit(targets, &t_row.local);
    let mut tc = FormCache::of_row(t_row);
    let z = gemm_via_row(ctx, topo, &mut tc, &weights.w[0], false, None, ops);
    if plan.memoize {
        t_fwd[0] = Some(tc);
    }
    h.push(FormCache::of_row(activate(z, layers != 1)));
    for l in 2..=layers {
        let (out, tf) = forward_layer(
            ctx,
            topo,
            &mut h[l - 1],
            &weights.w[l - 1],
            plan.config.forward[l - 1],
            plan.memoize,
            l == layers,
            overlap,
            ops,
        );
        h.push(out);
        t_fwd[l - 1] = tf;
    }
    (ForwardArtifacts { h, t_fwd }, outcome)
}

/// Gradients produced by the backward pass.
pub struct BackwardResult {
    /// Replicated, already all-reduced weight gradients (one per layer).
    pub weight_grads: Vec<Mat>,
    /// Gradient with respect to the input features (`G^0` in Fig. 4).
    pub g0: DistMat,
}

/// Run the backward pass of eq. (3)–(4) under `plan`, consuming the
/// forward artifacts (their caches may gain layouts as reuse demands).
#[allow(clippy::too_many_arguments)]
pub fn rdm_backward(
    ctx: &RankCtx,
    topo: &Topology,
    artifacts: &mut ForwardArtifacts,
    weights: &GcnWeights,
    plan: &Plan,
    loss_grad: DistMat,
    feats: &[usize],
    ops: &mut OpCounters,
) -> BackwardResult {
    rdm_backward_with(
        ctx, topo, artifacts, weights, plan, loss_grad, feats, None, ops,
    )
}

/// [`rdm_backward`] with an optional pipelined-redistribution spec; see
/// [`rdm_forward_with`]. The weight-gradient and ReLU-mask stages stay
/// blocking (they reuse cached layouts and are rarely on the critical
/// redistribution path).
#[allow(clippy::too_many_arguments)]
pub fn rdm_backward_with(
    ctx: &RankCtx,
    topo: &Topology,
    artifacts: &mut ForwardArtifacts,
    weights: &GcnWeights,
    plan: &Plan,
    loss_grad: DistMat,
    feats: &[usize],
    overlap: Option<&OverlapSpec>,
    ops: &mut OpCounters,
) -> BackwardResult {
    let layers = plan.config.layers();
    assert_eq!(
        loss_grad.dist,
        Dist::Row,
        "loss gradient arrives row-sliced"
    );
    let mut g_cache = FormCache::of_row(loss_grad);
    let mut weight_grads: Vec<Mat> = weights
        .w
        .iter()
        .map(|w| Mat::zeros(w.rows(), w.cols()))
        .collect();
    let mut g0: Option<DistMat> = None;
    for l in (1..=layers).rev() {
        let w = &weights.w[l - 1];
        // Stage 1: propagate the gradient through aggregation + weights.
        let (g_prev_pre, t_b_row) = match plan.config.backward[l - 1] {
            Order::SpmmFirst => {
                // T = Â·Gˡ (tile layout), redistribute, then Gˡ⁻¹ = T·Wᵀ
                // (row slices).
                let t = spmm_via_col(ctx, topo, &mut g_cache, true, overlap, ops);
                let mut tc = FormCache::of_col(t);
                let gp = gemm_via_row(ctx, topo, &mut tc, w, true, overlap, ops);
                let t_row = tc.row.as_ref().expect("GEMM left the row form").clone();
                (gp, Some(t_row))
            }
            Order::GemmFirst => {
                // T = Gˡ·Wᵀ (row slices), redistribute, then Gˡ⁻¹ = Â·T
                // (tile layout).
                let t = gemm_via_row(ctx, topo, &mut g_cache, w, true, overlap, ops);
                let mut ttc = FormCache::of_row(t);
                let gp = spmm_via_col(ctx, topo, &mut ttc, true, overlap, ops);
                (gp, None)
            }
        };
        // Stage 2: the weight gradient Yˡ (eq. 4).
        weight_grads[l - 1] = compute_weight_grad(
            ctx,
            topo,
            l,
            artifacts,
            &mut g_cache,
            t_b_row.as_ref(),
            feats,
            ops,
        );
        // Stage 3: mask by σ'(Z^{l-1}) and hand off (no mask into the raw
        // input features).
        if l > 1 {
            let masked = apply_relu_mask(ctx, topo, g_prev_pre, &mut artifacts.h[l - 1]);
            g_cache = match masked.dist {
                Dist::Row => FormCache::of_row(masked),
                Dist::Col => FormCache::of_col(masked),
                Dist::Replicated => unreachable!(),
            };
        } else {
            g0 = Some(g_prev_pre);
        }
    }
    BackwardResult {
        weight_grads,
        g0: g0.expect("layer 1 always produces G^0"),
    }
}

/// Compute `Yˡ = (H^{l-1})ᵀ (Â Gˡ)` choosing the cheapest valid product
/// (§III-C). For the symmetric GCN adjacency, `Yˡ = (Â H^{l-1})ᵀ Gˡ` is an
/// equally valid form, which lets the memoized forward intermediate stand
/// in for the backward SpMM.
#[allow(clippy::too_many_arguments)]
fn compute_weight_grad(
    ctx: &RankCtx,
    topo: &Topology,
    l: usize,
    artifacts: &mut ForwardArtifacts,
    g_cache: &mut FormCache,
    t_b_row: Option<&DistMat>,
    feats: &[usize],
    ops: &mut OpCounters,
) -> Mat {
    if let Some(t_b) = t_b_row {
        // Backward was SpMM-first: Â·Gˡ is already in row form.
        if artifacts.h[l - 1].has_row() {
            let h_row = artifacts.h[l - 1].row.as_ref().unwrap();
            return weight_grad(h_row, t_b, ctx, ops);
        }
        // H^{l-1} exists only tile-sliced; if the forward intermediate
        // and the gradient have row forms, use Yˡ = (Â H^{l-1})ᵀ Gˡ.
        if artifacts.t_fwd[l - 1].is_some() && g_cache.has_row() {
            let t_f = artifacts.t_fwd[l - 1]
                .as_mut()
                .unwrap()
                .require_row(topo, ctx, CollectiveKind::Redistribute)
                .clone();
            let g_row = g_cache.row.as_ref().unwrap();
            return weight_grad(&t_f, g_row, ctx, ops);
        }
        // Pathological 3-layer-only case: pay one extra redistribution.
        let h_row = artifacts.h[l - 1]
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        return weight_grad(&h_row, t_b, ctx, ops);
    }
    // Backward was GEMM-first. The gradient's row form exists (the GEMM
    // consumed it).
    let g_row = g_cache
        .row
        .as_ref()
        .expect("GEMM-first consumed row form")
        .clone();
    if artifacts.t_fwd[l - 1].is_some() {
        // Memoized: Yˡ = (Â H^{l-1})ᵀ Gˡ — zero extra sparse work.
        let t_f = artifacts.t_fwd[l - 1]
            .as_mut()
            .unwrap()
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        return weight_grad(&t_f, &g_row, ctx, ops);
    }
    // Non-memoized (forward was GEMM-first, or memoization disabled): an
    // extra SpMM of the cheaper width, plus redistributions around it
    // (Table III, N.M.).
    let f_in = feats[l - 1];
    let f_out = feats[l];
    if f_out <= f_in {
        // Recompute T = Â·Gˡ.
        let g_tile = g_cache
            .require_col(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        let t = topo.spmm_bwd(&g_tile, ctx, ops);
        let mut tc = FormCache::of_col(t);
        let t_row = tc
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        let h_row = artifacts.h[l - 1]
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        weight_grad(&h_row, &t_row, ctx, ops)
    } else {
        // Recompute T = Â·H^{l-1}.
        let h_tile = artifacts.h[l - 1]
            .require_col(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        let t = topo.spmm(&h_tile, ctx, ops);
        let mut tc = FormCache::of_col(t);
        let t_row = tc
            .require_row(topo, ctx, CollectiveKind::Redistribute)
            .clone();
        weight_grad(&t_row, &g_row, ctx, ops)
    }
}

/// `G ⊙ σ'(Z)` using the saved activation (`σ'(z) = 1[relu(z) > 0]`),
/// aligned to whichever layout the gradient is in. If the activation was
/// never materialized in that layout, the mask is aligned with an
/// all-to-all tagged `Other` (traffic the paper's model does not price —
/// see the module docs).
fn apply_relu_mask(
    ctx: &RankCtx,
    topo: &Topology,
    mut g: DistMat,
    h_cache: &mut FormCache,
) -> DistMat {
    let h = match g.dist {
        Dist::Row => h_cache.require_row(topo, ctx, CollectiveKind::Other),
        Dist::Col => h_cache.require_col(topo, ctx, CollectiveKind::Other),
        Dist::Replicated => unreachable!("gradients are never replicated"),
    };
    g.local = relu_backward(&g.local, &h.local);
    g
}

/// Serial (single-process) GCN forward/backward reference used by tests:
/// plain dense/sparse algebra with no distribution at all.
pub mod serial {
    use super::GcnWeights;
    use rdm_dense::{gemm, gemm_nt, gemm_tn, relu, relu_backward, Mat};
    use rdm_sparse::{spmm, Csr};

    /// Forward: returns per-layer activations (`h[0]` = input, `h[L]` =
    /// logits).
    pub fn forward(adj: &Csr, input: &Mat, weights: &GcnWeights) -> Vec<Mat> {
        let mut h = vec![input.clone()];
        let layers = weights.layers();
        for l in 1..=layers {
            let t = spmm(adj, &h[l - 1]);
            let z = gemm(&t, &weights.w[l - 1]);
            h.push(if l < layers { relu(&z) } else { z });
        }
        h
    }

    /// Backward from a logits gradient for a **symmetric** aggregation
    /// matrix; returns (weight grads, input grad).
    pub fn backward(
        adj: &Csr,
        h: &[Mat],
        weights: &GcnWeights,
        loss_grad: &Mat,
    ) -> (Vec<Mat>, Mat) {
        backward_asym(adj, h, weights, loss_grad)
    }

    /// Backward for a general aggregation matrix `M`: pass `Mᵀ` as
    /// `adj_bwd` (equal to `M` in the symmetric GCN case). All adjacency
    /// products in the backward pass are against the transpose:
    /// `Gˡ⁻¹ = Mᵀ Gˡ Wᵀ ⊙ σ'` and `Yˡ = Hᵀ Mᵀ Gˡ`.
    pub fn backward_asym(
        adj_bwd: &Csr,
        h: &[Mat],
        weights: &GcnWeights,
        loss_grad: &Mat,
    ) -> (Vec<Mat>, Mat) {
        let layers = weights.layers();
        let mut grads = Vec::new();
        let mut g = loss_grad.clone();
        for l in (1..=layers).rev() {
            let t = spmm(adj_bwd, &g); // Mᵀ·Gˡ
            let y = gemm_tn(&h[l - 1], &t); // Hᵀ Mᵀ Gˡ
            grads.push(y);
            let mut gp = gemm_nt(&t, &weights.w[l - 1]);
            if l > 1 {
                gp = relu_backward(&gp, &h[l - 1]);
            }
            g = gp;
        }
        grads.reverse();
        (grads, g)
    }
}

/// Build the input [`FormCache`] for a topology: both layouts of the
/// feature matrix, sliced locally (the initial distribution is free).
pub fn input_cache(features: &Mat, topo: &Topology, ctx: &RankCtx) -> FormCache {
    let mut c = FormCache::of_row(DistMat::scatter_rows(features, ctx.size(), ctx.rank()));
    c.put(topo.scatter_tile(features, ctx));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{serial as loss_serial, softmax_xent, LossSpec};
    use rdm_comm::Cluster;
    use rdm_dense::allclose;
    use rdm_graph::dataset::toy;
    use rdm_model::OrderConfig;

    /// Distributed forward under every 2-layer plan must equal the serial
    /// forward.
    #[test]
    fn forward_matches_serial_for_all_16_configs() {
        let ds = toy(60, 1);
        let weights = GcnWeights::init(&[16, 8, 4], 7);
        let serial_h = serial::forward(&ds.adj_norm, &ds.features, &weights);
        let logits_ref = serial_h.last().unwrap().clone();
        for id in 0..16 {
            let plan = Plan::from_id(id, 2, 4);
            let (adj, feats, w2, lr) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                logits_ref.clone(),
            );
            let out = Cluster::new(4).run(move |ctx| {
                let topo = Topology::full(&adj, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                logits.gather(ctx, CollectiveKind::Other)
            });
            for got in &out.results {
                assert!(allclose(got, &lr, 1e-3), "config ID {id} forward mismatch");
            }
        }
    }

    /// Distributed backward under every 2-layer plan must produce the same
    /// weight gradients as the serial reference.
    #[test]
    fn backward_matches_serial_for_all_16_configs() {
        let ds = toy(48, 2);
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 3);
        let serial_h = serial::forward(&ds.adj_norm, &ds.features, &weights);
        let mask = vec![true; ds.n()];
        let (_, lg) = loss_serial::softmax_xent(serial_h.last().unwrap(), &ds.labels, &mask);
        let (serial_grads, serial_g0) = serial::backward(&ds.adj_norm, &serial_h, &weights, &lg);
        for id in 0..16 {
            let plan = Plan::from_id(id, 2, 4);
            let (adj, feats, w2, labels) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                ds.labels.clone(),
            );
            let fd = feats_dims.clone();
            let m2 = mask.clone();
            let out = Cluster::new(4).run(move |ctx| {
                let topo = Topology::full(&adj, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                let spec = LossSpec {
                    labels: &labels,
                    mask: &m2,
                    num_classes: 4,
                };
                let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                let back = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
                let g0 = match back.g0.dist {
                    Dist::Row => back.g0.gather(ctx, CollectiveKind::Other),
                    Dist::Col => topo.gather_tile(&back.g0, ctx, CollectiveKind::Other),
                    Dist::Replicated => unreachable!(),
                };
                (back.weight_grads, g0)
            });
            for (grads, g0) in &out.results {
                for (l, (got, expect)) in grads.iter().zip(&serial_grads).enumerate() {
                    assert!(
                        allclose(got, expect, 1e-3),
                        "config ID {id} weight grad layer {} mismatch",
                        l + 1
                    );
                }
                assert!(allclose(g0, &serial_g0, 1e-3), "config ID {id} g0 mismatch");
            }
        }
    }

    /// Three-layer plans must also match the serial reference.
    #[test]
    fn three_layer_forward_backward_matches_serial() {
        let ds = toy(40, 5);
        let feats_dims = vec![16usize, 12, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 11);
        let serial_h = serial::forward(&ds.adj_norm, &ds.features, &weights);
        let mask = vec![true; ds.n()];
        let (_, lg) = loss_serial::softmax_xent(serial_h.last().unwrap(), &ds.labels, &mask);
        let (serial_grads, _) = serial::backward(&ds.adj_norm, &serial_h, &weights, &lg);
        // Sample of IDs including ones that hit the pathological reuse
        // paths; running all 64 here would be slow in debug builds.
        for id in [0usize, 5, 10, 21, 42, 63, 38, 27] {
            let plan = Plan {
                config: OrderConfig::from_id(id, 3),
                r_a: 4,
                memoize: true,
            };
            let (adj, feats, w2, labels) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                ds.labels.clone(),
            );
            let fd = feats_dims.clone();
            let m2 = mask.clone();
            let out = Cluster::new(4).run(move |ctx| {
                let topo = Topology::full(&adj, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                let spec = LossSpec {
                    labels: &labels,
                    mask: &m2,
                    num_classes: 4,
                };
                let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                let back = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
                back.weight_grads
            });
            for grads in &out.results {
                for (l, (got, expect)) in grads.iter().zip(&serial_grads).enumerate() {
                    assert!(
                        allclose(got, expect, 1e-3),
                        "3-layer ID {id} grad layer {} mismatch",
                        l + 1
                    );
                }
            }
        }
    }

    /// `R_A < P` (Fig. 6 topology): forward and backward still match the
    /// serial reference, for all 16 configs on a 2×2 grid and a 4×2 grid.
    #[test]
    fn ra_topology_matches_serial_for_all_configs() {
        let ds = toy(48, 9);
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 3);
        let serial_h = serial::forward(&ds.adj_norm, &ds.features, &weights);
        let mask = vec![true; ds.n()];
        let (_, lg) = loss_serial::softmax_xent(serial_h.last().unwrap(), &ds.labels, &mask);
        let (serial_grads, _) = serial::backward(&ds.adj_norm, &serial_h, &weights, &lg);
        for (p, r_a) in [(4usize, 2usize), (8, 2), (8, 4)] {
            for id in 0..16 {
                let plan = Plan {
                    config: OrderConfig::from_id(id, 2),
                    r_a,
                    memoize: true,
                };
                let (adj, feats, w2, labels) = (
                    ds.adj_norm.clone(),
                    ds.features.clone(),
                    weights.clone(),
                    ds.labels.clone(),
                );
                let fd = feats_dims.clone();
                let m2 = mask.clone();
                let out = Cluster::new(p).run(move |ctx| {
                    let topo = Topology::new(&adj, r_a, ctx);
                    let mut ops = OpCounters::default();
                    let input = input_cache(&feats, &topo, ctx);
                    let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                    let logits = art.logits_row(&topo, ctx);
                    let spec = LossSpec {
                        labels: &labels,
                        mask: &m2,
                        num_classes: 4,
                    };
                    let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                    let back = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
                    back.weight_grads
                });
                for grads in &out.results {
                    for (l, (got, expect)) in grads.iter().zip(&serial_grads).enumerate() {
                        assert!(
                            allclose(got, expect, 1e-3),
                            "P={p} R_A={r_a} ID {id} grad layer {} mismatch",
                            l + 1
                        );
                    }
                }
            }
        }
    }

    /// Disabling memoization must not change the numerics, only the cost.
    #[test]
    fn no_memoize_same_gradients_more_spmm() {
        let ds = toy(48, 4);
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 3);
        // ID 8 = (F:SS, B:DS): layer 2 is S-forward, D-backward — the
        // memoized case.
        let run = |memoize: bool| {
            let plan = Plan {
                config: OrderConfig::from_id(8, 2),
                r_a: 4,
                memoize,
            };
            let (adj, feats, w2, labels) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                ds.labels.clone(),
            );
            let fd = feats_dims.clone();
            Cluster::new(4).run(move |ctx| {
                let topo = Topology::full(&adj, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                let mask = vec![true; labels.len()];
                let spec = LossSpec {
                    labels: &labels,
                    mask: &mask,
                    num_classes: 4,
                };
                let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                let back = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
                (back.weight_grads, ops)
            })
        };
        let with = run(true);
        let without = run(false);
        for (a, b) in with.results.iter().zip(&without.results) {
            for (ga, gb) in a.0.iter().zip(&b.0) {
                assert!(allclose(ga, gb, 1e-4), "gradients changed with memoize off");
            }
            assert!(
                b.1.spmm_fma > a.1.spmm_fma,
                "no-memoize must pay extra SpMM: {} vs {}",
                b.1.spmm_fma,
                a.1.spmm_fma
            );
        }
    }

    /// The measured redistribution traffic of an epoch must equal the cost
    /// model's prediction exactly, for representative configurations.
    #[test]
    fn measured_redistribution_matches_cost_model() {
        let ds = toy(64, 3);
        let p = 4;
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 5);
        let shape = rdm_model::GnnShape {
            n: ds.n(),
            nnz: ds.adj_norm.nnz(),
            feats: feats_dims.clone(),
        };
        for id in [0usize, 2, 3, 5, 8, 10, 12] {
            let plan = Plan::from_id(id, 2, p);
            let expect = rdm_model::cost::config_cost(&shape, &plan.config, p, p);
            let (adj, feats, w2, labels) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                ds.labels.clone(),
            );
            let fd = feats_dims.clone();
            let out = Cluster::new(p).run(move |ctx| {
                let topo = Topology::full(&adj, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                let mask = vec![true; labels.len()];
                let spec = LossSpec {
                    labels: &labels,
                    mask: &mask,
                    num_classes: 4,
                };
                let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                let _ = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
                ops
            });
            let measured_bytes: u64 = out
                .stats
                .iter()
                .map(|s| s.bytes(CollectiveKind::Redistribute))
                .sum();
            // The model counts elements; ×4 for f32 bytes. Balanced
            // partition of 64 rows / 16·8·4 cols over 4 ranks is exact.
            let expect_bytes = (expect.comm_elems * 4.0) as u64;
            assert_eq!(
                measured_bytes, expect_bytes,
                "config ID {id}: measured {measured_bytes} vs model {expect_bytes}"
            );
            // SpMM op counts must match too.
            let measured_spmm: f64 = out.results.iter().map(|o| o.spmm_fma).sum();
            assert_eq!(measured_spmm, expect.spmm_ops, "config ID {id} spmm ops");
        }
    }

    /// Under `R_A < P` the measured traffic (group redistributions +
    /// panel broadcasts) must equal the Table II/III `R_A < P` model.
    #[test]
    fn ra_measured_traffic_matches_cost_model() {
        let ds = toy(64, 6);
        let p = 4;
        let r_a = 2;
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 5);
        let shape = rdm_model::GnnShape {
            n: ds.n(),
            nnz: ds.adj_norm.nnz(),
            feats: feats_dims.clone(),
        };
        for id in [0usize, 5, 10] {
            let plan = Plan {
                config: OrderConfig::from_id(id, 2),
                r_a,
                memoize: true,
            };
            let expect = rdm_model::cost::config_cost(&shape, &plan.config, p, r_a);
            let (adj, feats, w2, labels) = (
                ds.adj_norm.clone(),
                ds.features.clone(),
                weights.clone(),
                ds.labels.clone(),
            );
            let fd = feats_dims.clone();
            let out = Cluster::new(p).run(move |ctx| {
                let topo = Topology::new(&adj, r_a, ctx);
                let mut ops = OpCounters::default();
                let input = input_cache(&feats, &topo, ctx);
                let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
                let logits = art.logits_row(&topo, ctx);
                let mask = vec![true; labels.len()];
                let spec = LossSpec {
                    labels: &labels,
                    mask: &mask,
                    num_classes: 4,
                };
                let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
                let _ = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
            });
            let measured: u64 = out
                .stats
                .iter()
                .map(|s| s.bytes(CollectiveKind::Redistribute) + s.bytes(CollectiveKind::Broadcast))
                .sum();
            let expect_bytes = (expect.comm_elems * 4.0) as u64;
            assert_eq!(
                measured, expect_bytes,
                "R_A={r_a} config ID {id}: measured {measured} vs model {expect_bytes}"
            );
        }
    }

    /// ID 10 (the paper's running example) must move exactly 4·f_h units
    /// and nothing else.
    #[test]
    fn id10_traffic_is_4fh_only() {
        let ds = toy(64, 9);
        let p = 4;
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 5);
        let plan = Plan::from_id(10, 2, p);
        let (adj, feats, w2, labels) = (
            ds.adj_norm.clone(),
            ds.features.clone(),
            weights.clone(),
            ds.labels.clone(),
        );
        let fd = feats_dims.clone();
        let out = Cluster::new(p).run(move |ctx| {
            let topo = Topology::full(&adj, ctx);
            let mut ops = OpCounters::default();
            let input = input_cache(&feats, &topo, ctx);
            let mut art = rdm_forward(ctx, &topo, input, &w2, &plan, &mut ops);
            let logits = art.logits_row(&topo, ctx);
            let mask = vec![true; labels.len()];
            let spec = LossSpec {
                labels: &labels,
                mask: &mask,
                num_classes: 4,
            };
            let (_, lgrad) = softmax_xent(&logits, &spec, ctx);
            let _ = rdm_backward(ctx, &topo, &mut art, &w2, &plan, lgrad, &fd, &mut ops);
        });
        let redistribute: u64 = out
            .stats
            .iter()
            .map(|s| s.bytes(CollectiveKind::Redistribute))
            .sum();
        // 4 · f_h · (P-1)/P · N elements × 4 bytes; N=64, f_h=8, P=4.
        assert_eq!(redistribute as usize, 4 * (3 * 64 / 4) * 8 * 4);
        // No broadcast traffic at all (fully replicated adjacency).
        for st in &out.stats {
            assert_eq!(st.bytes(CollectiveKind::Broadcast), 0);
        }
    }

    /// The pipelined engine must be *bitwise* identical to the blocking
    /// one — logits, weight gradients, G⁰ and payload bytes — for every
    /// 2-layer plan, while actually hiding modeled communication time.
    #[test]
    fn overlapped_engine_is_bitwise_blocking() {
        let ds = toy(57, 13);
        let p = 3;
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 21);
        for id in 0..16 {
            let plan = Plan::from_id(id, 2, p);
            let mut runs = Vec::new();
            for chunks in [None, Some(3usize)] {
                let plan = plan.clone();
                let (adj, feats, w2, labels) = (
                    ds.adj_norm.clone(),
                    ds.features.clone(),
                    weights.clone(),
                    ds.labels.clone(),
                );
                let fd = feats_dims.clone();
                let out = Cluster::new(p).run(move |ctx| {
                    let spec = chunks.map(OverlapSpec::new);
                    let topo = Topology::full(&adj, ctx);
                    let mut ops = OpCounters::default();
                    let input = input_cache(&feats, &topo, ctx);
                    let mut art =
                        rdm_forward_with(ctx, &topo, input, &w2, &plan, spec.as_ref(), &mut ops);
                    let logits = art.logits_row(&topo, ctx);
                    let mask = vec![true; labels.len()];
                    let lspec = LossSpec {
                        labels: &labels,
                        mask: &mask,
                        num_classes: 4,
                    };
                    let (loss, lgrad) = softmax_xent(&logits, &lspec, ctx);
                    let back = rdm_backward_with(
                        ctx,
                        &topo,
                        &mut art,
                        &w2,
                        &plan,
                        lgrad,
                        &fd,
                        spec.as_ref(),
                        &mut ops,
                    );
                    let g0 = match back.g0.dist {
                        Dist::Row => back.g0.gather(ctx, CollectiveKind::Other),
                        Dist::Col => topo.gather_tile(&back.g0, ctx, CollectiveKind::Other),
                        Dist::Replicated => unreachable!(),
                    };
                    (loss, back.weight_grads, g0, ops)
                });
                runs.push(out);
            }
            let (blocking, overlapped) = (&runs[0], &runs[1]);
            for (b, o) in blocking.results.iter().zip(&overlapped.results) {
                assert_eq!(b.0.to_bits(), o.0.to_bits(), "id {id} loss drifted");
                for (l, (gb, go)) in b.1.iter().zip(&o.1).enumerate() {
                    assert_eq!(gb.as_slice(), go.as_slice(), "id {id} grad layer {}", l + 1);
                }
                assert_eq!(b.2.as_slice(), o.2.as_slice(), "id {id} g0 drifted");
                assert_eq!(b.3.spmm_fma, o.3.spmm_fma, "id {id} spmm FMA drifted");
                assert_eq!(b.3.gemm_fma, o.3.gemm_fma, "id {id} gemm FMA drifted");
            }
            for (sb, so) in blocking.stats.iter().zip(&overlapped.stats) {
                assert_eq!(
                    sb.bytes(CollectiveKind::Redistribute),
                    so.bytes(CollectiveKind::Redistribute),
                    "id {id} payload bytes drifted"
                );
                assert_eq!(sb.overlap_ns, 0, "blocking path must not record overlap");
            }
            let hidden: u64 = overlapped.stats.iter().map(|s| s.overlap_ns).sum();
            assert!(hidden > 0, "id {id} hid no communication time");
        }
    }

    /// One reason per gate in [`overlap_active`], in precedence order —
    /// the report strings reports print must track the gate exactly.
    #[test]
    fn overlap_inert_reasons_cover_every_gate() {
        assert_eq!(overlap_inert_reason(1, 4, 4, false), Some("chunks < 2"));
        assert_eq!(overlap_inert_reason(4, 1, 1, false), Some("single rank"));
        assert_eq!(overlap_inert_reason(4, 4, 4, true), Some("edge mask"));
        let ra1 = overlap_inert_reason(4, 4, 1, false).expect("r_a = 1 must be inert");
        assert!(ra1.contains("r_a = 1"), "got {ra1:?}");
        assert_eq!(overlap_inert_reason(4, 4, 2, false), None);
        assert_eq!(overlap_inert_reason(4, 4, 4, false), None);
    }

    /// Replicated-panel parity: at `R_A < P` the pipelined engine (dense
    /// or sparse wire) must match the blocking dense engine bitwise —
    /// loss, gradients, G⁰, FMA counters — with identical
    /// dense-equivalent Redistribute *and* Broadcast books, and still
    /// hide communication time when a redistribution group exists
    /// (`r_a > 1`). At `r_a = 1` the overlap request is inert and must
    /// record nothing.
    #[test]
    fn overlapped_engine_is_bitwise_blocking_at_ra_lt_p() {
        let ds = toy(57, 13);
        let p = 4;
        let feats_dims = vec![16usize, 8, 4];
        let weights = GcnWeights::init(&feats_dims, 21);
        for id in [0usize, 5, 10, 15] {
            for r_a in [1usize, 2] {
                let plan = Plan::from_id(id, 2, p).with_ra(r_a);
                let mut runs = Vec::new();
                for (chunks, sparse) in [(None, false), (Some(3usize), false), (Some(3), true)] {
                    let plan = plan.clone();
                    let (adj, feats, w2, labels) = (
                        ds.adj_norm.clone(),
                        ds.features.clone(),
                        weights.clone(),
                        ds.labels.clone(),
                    );
                    let fd = feats_dims.clone();
                    let out = Cluster::new(p).run(move |ctx| {
                        let spec = chunks.map(OverlapSpec::new);
                        let mut topo = Topology::new(&adj, r_a, ctx);
                        topo.set_sparse(sparse);
                        let mut ops = OpCounters::default();
                        let input = input_cache(&feats, &topo, ctx);
                        let mut art = rdm_forward_with(
                            ctx,
                            &topo,
                            input,
                            &w2,
                            &plan,
                            spec.as_ref(),
                            &mut ops,
                        );
                        let logits = art.logits_row(&topo, ctx);
                        let mask = vec![true; labels.len()];
                        let lspec = LossSpec {
                            labels: &labels,
                            mask: &mask,
                            num_classes: 4,
                        };
                        let (loss, lgrad) = softmax_xent(&logits, &lspec, ctx);
                        let back = rdm_backward_with(
                            ctx,
                            &topo,
                            &mut art,
                            &w2,
                            &plan,
                            lgrad,
                            &fd,
                            spec.as_ref(),
                            &mut ops,
                        );
                        let g0 = match back.g0.dist {
                            Dist::Row => back.g0.gather(ctx, CollectiveKind::Other),
                            Dist::Col => topo.gather_tile(&back.g0, ctx, CollectiveKind::Other),
                            Dist::Replicated => unreachable!(),
                        };
                        (loss, back.weight_grads, g0, ops)
                    });
                    runs.push(out);
                }
                let blocking = &runs[0];
                for (which, run) in runs.iter().enumerate().skip(1) {
                    for (b, o) in blocking.results.iter().zip(&run.results) {
                        assert_eq!(
                            b.0.to_bits(),
                            o.0.to_bits(),
                            "id {id} r_a {r_a} run {which} loss drifted"
                        );
                        for (l, (gb, go)) in b.1.iter().zip(&o.1).enumerate() {
                            assert_eq!(
                                gb.as_slice(),
                                go.as_slice(),
                                "id {id} r_a {r_a} run {which} grad layer {}",
                                l + 1
                            );
                        }
                        assert_eq!(
                            b.2.as_slice(),
                            o.2.as_slice(),
                            "id {id} r_a {r_a} run {which} g0 drifted"
                        );
                        assert_eq!(b.3, o.3, "id {id} r_a {r_a} run {which} FMA drifted");
                    }
                    for (sb, so) in blocking.stats.iter().zip(&run.stats) {
                        for kind in [CollectiveKind::Redistribute, CollectiveKind::Broadcast] {
                            assert_eq!(
                                sb.dense_bytes(kind),
                                so.dense_bytes(kind),
                                "id {id} r_a {r_a} run {which} {kind:?} book drifted"
                            );
                        }
                        // Broadcasts always ride the dense wire.
                        assert_eq!(
                            sb.bytes(CollectiveKind::Broadcast),
                            so.bytes(CollectiveKind::Broadcast),
                            "id {id} r_a {r_a} run {which} broadcast bytes drifted"
                        );
                    }
                    let hidden: u64 = run.stats.iter().map(|s| s.overlap_ns).sum();
                    if r_a > 1 {
                        assert!(hidden > 0, "id {id} r_a {r_a} hid no communication time");
                    } else {
                        assert_eq!(hidden, 0, "id {id} r_a 1 must leave overlap inert");
                    }
                }
            }
        }
    }
}
